//! Deterministic, splittable random number generation.
//!
//! Every stochastic component of the simulation (workload generation, random
//! job selection in the MCC baseline, memory-growth jitter) draws from a
//! [`DetRng`] derived from a single experiment seed plus a component label.
//! Splitting by label means adding a new consumer of randomness never
//! perturbs the streams of existing consumers, so experiment results stay
//! stable as the code evolves.
//!
//! The normal sampler is a Box–Muller implementation so the crate does not
//! need `rand_distr`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// SplitMix64 finalizer — used to derive independent substream seeds from a
/// master seed and a label hash.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// FNV-1a hash of a label string, for substream derivation.
fn label_hash(label: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in label.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// A seeded deterministic RNG with convenience samplers.
#[derive(Debug, Clone)]
pub struct DetRng {
    inner: StdRng,
    /// Cached second output of the Box–Muller transform.
    spare_normal: Option<f64>,
}

impl DetRng {
    /// Create a generator from a raw 64-bit seed.
    pub fn from_seed(seed: u64) -> Self {
        DetRng {
            inner: StdRng::seed_from_u64(splitmix64(seed)),
            spare_normal: None,
        }
    }

    /// Derive an independent substream for `label` from a master `seed`.
    ///
    /// ```
    /// use phishare_sim::DetRng;
    /// let mut a = DetRng::substream(42, "workload");
    /// let mut b = DetRng::substream(42, "mcc-selection");
    /// // Streams are independent but each is individually reproducible.
    /// assert_eq!(
    ///     DetRng::substream(42, "workload").uniform_f64(),
    ///     a.uniform_f64(),
    /// );
    /// let _ = b.uniform_f64();
    /// ```
    pub fn substream(seed: u64, label: &str) -> Self {
        DetRng::from_seed(seed ^ label_hash(label))
    }

    /// Derive a numbered substream, e.g. one per job.
    pub fn substream_indexed(seed: u64, label: &str, index: u64) -> Self {
        DetRng::from_seed(seed ^ label_hash(label) ^ splitmix64(index))
    }

    /// Uniform float in `[0, 1)`.
    #[inline]
    pub fn uniform_f64(&mut self) -> f64 {
        self.inner.random::<f64>()
    }

    /// Uniform float in `[lo, hi)`.
    #[inline]
    pub fn uniform_range(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo <= hi, "uniform_range: lo > hi");
        if lo == hi {
            lo
        } else {
            self.inner.random_range(lo..hi)
        }
    }

    /// Uniform integer in `[lo, hi]` (inclusive).
    #[inline]
    pub fn uniform_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "uniform_u64: lo > hi");
        self.inner.random_range(lo..=hi)
    }

    /// Uniform index in `[0, len)`.
    ///
    /// # Panics
    /// Panics when `len == 0`.
    #[inline]
    pub fn index(&mut self, len: usize) -> usize {
        assert!(len > 0, "index: empty range");
        self.inner.random_range(0..len)
    }

    /// Bernoulli trial with success probability `p`.
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "chance: p out of [0,1]");
        self.uniform_f64() < p
    }

    /// Standard normal sample via the Box–Muller transform.
    pub fn standard_normal(&mut self) -> f64 {
        if let Some(z) = self.spare_normal.take() {
            return z;
        }
        // Draw u1 in (0, 1] to keep ln() finite.
        let u1 = 1.0 - self.uniform_f64();
        let u2 = self.uniform_f64();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.spare_normal = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Normal sample with the given mean and standard deviation.
    #[inline]
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        assert!(std_dev >= 0.0, "normal: negative std_dev");
        mean + std_dev * self.standard_normal()
    }

    /// Normal sample rejected-and-resampled into `[lo, hi]`.
    ///
    /// Falls back to clamping after 64 rejections so pathological parameters
    /// (e.g. a mean far outside the interval) cannot loop forever.
    pub fn truncated_normal(&mut self, mean: f64, std_dev: f64, lo: f64, hi: f64) -> f64 {
        assert!(lo <= hi, "truncated_normal: lo > hi");
        for _ in 0..64 {
            let x = self.normal(mean, std_dev);
            if (lo..=hi).contains(&x) {
                return x;
            }
        }
        mean.clamp(lo, hi)
    }

    /// Exponential sample with the given mean.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        assert!(mean > 0.0, "exponential: non-positive mean");
        let u = 1.0 - self.uniform_f64(); // (0, 1]
        -mean * u.ln()
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.inner.random_range(0..=i);
            slice.swap(i, j);
        }
    }

    /// Pick a uniformly random element of a non-empty slice.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> &'a T {
        &slice[self.index(slice.len())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::from_seed(7);
        let mut b = DetRng::from_seed(7);
        for _ in 0..100 {
            assert_eq!(a.uniform_f64(), b.uniform_f64());
        }
    }

    #[test]
    fn substreams_differ() {
        let mut a = DetRng::substream(7, "alpha");
        let mut b = DetRng::substream(7, "beta");
        let same = (0..32)
            .filter(|_| a.uniform_f64() == b.uniform_f64())
            .count();
        assert!(same < 4, "substreams look correlated");
    }

    #[test]
    fn indexed_substreams_differ() {
        let mut a = DetRng::substream_indexed(7, "job", 0);
        let mut b = DetRng::substream_indexed(7, "job", 1);
        assert_ne!(a.uniform_f64(), b.uniform_f64());
    }

    #[test]
    fn uniform_range_bounds() {
        let mut r = DetRng::from_seed(1);
        for _ in 0..1000 {
            let x = r.uniform_range(2.0, 3.0);
            assert!((2.0..3.0).contains(&x));
            let n = r.uniform_u64(5, 9);
            assert!((5..=9).contains(&n));
        }
        assert_eq!(r.uniform_range(4.0, 4.0), 4.0);
    }

    #[test]
    fn normal_moments_are_sane() {
        let mut r = DetRng::from_seed(99);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| r.normal(10.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.1, "mean={mean}");
        assert!((var - 4.0).abs() < 0.2, "var={var}");
    }

    #[test]
    fn truncated_normal_respects_bounds() {
        let mut r = DetRng::from_seed(3);
        for _ in 0..1000 {
            let x = r.truncated_normal(0.5, 1.0, 0.0, 1.0);
            assert!((0.0..=1.0).contains(&x));
        }
        // Pathological mean: falls back to clamp, never loops forever.
        let x = r.truncated_normal(1e9, 1.0, 0.0, 1.0);
        assert_eq!(x, 1.0);
    }

    #[test]
    fn exponential_mean_is_sane() {
        let mut r = DetRng::from_seed(5);
        let n = 20_000;
        let mean = (0..n).map(|_| r.exponential(4.0)).sum::<f64>() / n as f64;
        assert!((mean - 4.0).abs() < 0.15, "mean={mean}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = DetRng::from_seed(11);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50-element shuffle left input untouched");
    }

    #[test]
    fn chance_extremes() {
        let mut r = DetRng::from_seed(13);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }
}
