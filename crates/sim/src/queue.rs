//! Stable-priority event queue.
//!
//! Events are ordered by `(time, insertion sequence)`. The sequence number
//! breaks ties between events scheduled for the same tick in
//! first-scheduled-first-fired order, which makes every simulation run fully
//! deterministic for a given seed — a prerequisite for reproducing the
//! paper's tables exactly.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An entry in the queue: the scheduled time, a tie-breaking sequence number
/// and the event payload.
#[derive(Debug)]
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops first.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// A deterministic min-priority queue of timestamped events.
///
/// ```
/// use phishare_sim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_secs(2), "b");
/// q.push(SimTime::from_secs(1), "a");
/// q.push(SimTime::from_secs(2), "c"); // same tick as "b", inserted later
///
/// assert_eq!(q.pop(), Some((SimTime::from_secs(1), "a")));
/// assert_eq!(q.pop(), Some((SimTime::from_secs(2), "b")));
/// assert_eq!(q.pop(), Some((SimTime::from_secs(2), "c")));
/// assert_eq!(q.pop(), None);
/// ```
///
/// ## Stale entries
///
/// Rate-rescaling simulations cancel predictions by *abandoning* them: a
/// reschedule leaves the old completion event in the heap and relies on a
/// generation check to drop it when it surfaces. [`EventQueue::pop_live`]
/// supports that pattern directly — it drains abandoned entries lazily at
/// pop time (each costs one `O(log n)` pop, never a re-heapify) and counts
/// them in [`EventQueue::stale_drained`].
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    stale_drained: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Create an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            stale_drained: 0,
        }
    }

    /// Create an empty queue with room for `cap` events before reallocating.
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(cap),
            next_seq: 0,
            stale_drained: 0,
        }
    }

    /// Grow the backing storage for at least `additional` more events.
    pub fn reserve(&mut self, additional: usize) {
        self.heap.reserve(additional);
    }

    /// Events the queue can hold before reallocating.
    pub fn capacity(&self) -> usize {
        self.heap.capacity()
    }

    /// Schedule `event` to fire at `time`. Events for equal times fire in
    /// insertion order.
    pub fn push(&mut self, time: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time, seq, event });
    }

    /// Remove and return the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| (e.time, e.event))
    }

    /// Remove and return the earliest event for which `is_live` holds,
    /// draining any stale entries encountered on the way without handing
    /// them to the caller. Drained entries are tallied in
    /// [`EventQueue::stale_drained`].
    pub fn pop_live(&mut self, mut is_live: impl FnMut(&E) -> bool) -> Option<(SimTime, E)> {
        while let Some(e) = self.heap.pop() {
            if is_live(&e.event) {
                return Some((e.time, e.event));
            }
            self.stale_drained += 1;
        }
        None
    }

    /// Total stale entries lazily drained by [`EventQueue::pop_live`].
    pub fn stale_drained(&self) -> u64 {
        self.stale_drained
    }

    /// The time of the earliest pending event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drop all pending events (sequence numbering continues monotonically).
    pub fn clear(&mut self) {
        self.heap.clear();
    }

    /// Reset the queue to its freshly-constructed state — empty, sequence
    /// numbering restarted, stale counter zeroed — while keeping the heap's
    /// allocation. This is the cross-run recycling hook: a simulation built
    /// on a reset queue behaves bit-identically to one built on
    /// [`EventQueue::new`], but pays no growth reallocations.
    pub fn reset(&mut self) {
        self.heap.clear();
        self.next_seq = 0;
        self.stale_drained = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(t(3), 30);
        q.push(t(1), 10);
        q.push(t(2), 20);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![10, 20, 30]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(t(7), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.push(t(5), "late");
        q.push(t(1), "early");
        assert_eq!(q.pop().unwrap().1, "early");
        q.push(t(3), "mid");
        assert_eq!(q.pop().unwrap().1, "mid");
        assert_eq!(q.pop().unwrap().1, "late");
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.push(t(2), ());
        assert_eq!(q.peek_time(), Some(t(2)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn clear_keeps_sequence_monotone() {
        let mut q = EventQueue::new();
        q.push(t(1), 1);
        q.clear();
        assert!(q.is_empty());
        // After clearing, same-tick ordering across the clear is still
        // insertion order (sequence numbers are never reused).
        q.push(t(1), 2);
        q.push(t(1), 3);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 3);
    }

    #[test]
    fn pop_live_drains_stale_entries_lazily() {
        let mut q = EventQueue::new();
        q.push(t(1), -1);
        q.push(t(2), 20);
        q.push(t(3), -3);
        q.push(t(4), 40);
        // Negative payloads are stale; they are only discarded as they
        // surface, and never reach the caller.
        assert_eq!(q.pop_live(|e| *e >= 0), Some((t(2), 20)));
        assert_eq!(q.stale_drained(), 1);
        assert_eq!(q.pop_live(|e| *e >= 0), Some((t(4), 40)));
        assert_eq!(q.stale_drained(), 2);
        assert_eq!(q.pop_live(|e| *e >= 0), None);
        assert_eq!(q.stale_drained(), 2);
    }

    #[test]
    fn clear_reuses_capacity() {
        let mut q = EventQueue::with_capacity(64);
        let cap = q.capacity();
        assert!(cap >= 64);
        for i in 0..64 {
            q.push(t(i), i);
        }
        q.clear();
        // Clearing keeps the allocation: a cancelled generation costs no
        // reallocation when the next one fills back up.
        assert_eq!(q.capacity(), cap);
        q.reserve(128);
        assert!(q.capacity() >= 128);
    }

    #[test]
    fn sub_tick_ordering_matches_schedule_order() {
        let mut q = EventQueue::new();
        let base = t(1);
        q.push(base + SimDuration::from_ticks(1), "b");
        q.push(base, "a");
        q.push(base + SimDuration::from_ticks(1), "c");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }
}
