//! # phishare-sim — deterministic discrete-event simulation engine
//!
//! This crate provides the substrate every other `phishare` crate runs on:
//!
//! * [`time`] — a millisecond-resolution simulation clock ([`SimTime`]) and
//!   duration type ([`SimDuration`]) with explicit, overflow-checked
//!   arithmetic;
//! * [`queue`] — a stable-priority event queue ([`EventQueue`]) ordered by
//!   `(time, insertion sequence)`, so two runs with the same seed produce
//!   byte-identical traces;
//! * [`engine`] — a minimal driver ([`Sim`]) that owns the clock and the
//!   queue and hands events to a caller-supplied handler;
//! * [`stats`] — time-weighted integrators used for utilization accounting
//!   (the paper's §III core-utilization measurements), counters and simple
//!   distribution summaries;
//! * [`slab`] — generation-stamped dense slot storage ([`Slab`]) backing
//!   the substrate fast path's per-process and per-job state;
//! * [`rng`] — seeded, splittable deterministic random number generation,
//!   including a Box–Muller normal sampler so we do not need `rand_distr`.
//!
//! The engine is intentionally single-threaded: determinism is a hard
//! requirement for reproducing the paper's experiments, and the experiment
//! *sweeps* (many independent simulations) are parallelized one level up in
//! `phishare-cluster` instead.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod queue;
pub mod rng;
pub mod slab;
pub mod stats;
pub mod time;

pub use engine::Sim;
pub use queue::EventQueue;
pub use rng::DetRng;
pub use slab::{Slab, Slot};
pub use stats::{Counter, Histogram, Summary, TimeWeighted};
pub use time::{SimDuration, SimTime};
