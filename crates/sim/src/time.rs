//! Simulation clock types.
//!
//! The whole simulation runs on a single integer clock with a resolution of
//! **1 tick = 1 millisecond**. Integer time keeps event ordering exact and
//! reproducible; floating-point time would make run-to-run determinism depend
//! on summation order.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// Number of ticks per simulated second.
pub const TICKS_PER_SEC: u64 = 1_000;

/// An absolute instant on the simulation clock, in ticks since time zero.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of simulation time, in ticks.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The origin of the simulation clock.
    pub const ZERO: SimTime = SimTime(0);
    /// The maximum representable instant (used as an "infinitely far" sentinel).
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw ticks (milliseconds).
    #[inline]
    pub const fn from_ticks(ticks: u64) -> Self {
        SimTime(ticks)
    }

    /// Construct from whole simulated seconds.
    #[inline]
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * TICKS_PER_SEC)
    }

    /// The raw tick count.
    #[inline]
    pub const fn ticks(self) -> u64 {
        self.0
    }

    /// This instant expressed in (fractional) seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / TICKS_PER_SEC as f64
    }

    /// The duration elapsed since `earlier`.
    ///
    /// # Panics
    /// Panics if `earlier` is later than `self`; a negative elapsed time is
    /// always a simulation bug.
    #[inline]
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(earlier.0)
                .expect("SimTime::since: earlier instant is in the future"),
        )
    }

    /// Saturating version of [`SimTime::since`]: returns zero instead of
    /// panicking when `earlier` is later than `self`.
    #[inline]
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The maximum representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Construct from raw ticks (milliseconds).
    #[inline]
    pub const fn from_ticks(ticks: u64) -> Self {
        SimDuration(ticks)
    }

    /// Construct from whole simulated milliseconds (alias of `from_ticks`).
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms)
    }

    /// Construct from whole simulated seconds.
    #[inline]
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * TICKS_PER_SEC)
    }

    /// Construct from fractional seconds, rounding to the nearest tick.
    #[inline]
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "SimDuration::from_secs_f64: duration must be finite and non-negative, got {secs}"
        );
        SimDuration((secs * TICKS_PER_SEC as f64).round() as u64)
    }

    /// The raw tick count.
    #[inline]
    pub const fn ticks(self) -> u64 {
        self.0
    }

    /// This duration expressed in (fractional) seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / TICKS_PER_SEC as f64
    }

    /// True if this duration is zero ticks long.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Multiply by an integer factor.
    #[inline]
    pub const fn saturating_mul(self, factor: u64) -> Self {
        SimDuration(self.0.saturating_mul(factor))
    }

    /// Scale by a non-negative float factor, rounding to the nearest tick.
    #[inline]
    pub fn mul_f64(self, factor: f64) -> Self {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "SimDuration::mul_f64: factor must be finite and non-negative, got {factor}"
        );
        SimDuration((self.0 as f64 * factor).round() as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, d: SimDuration) -> SimTime {
        SimTime(
            self.0
                .checked_add(d.0)
                .expect("SimTime overflow: schedule horizon exceeded"),
        )
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, d: SimDuration) {
        *self = *self + d;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(
            self.0
                .checked_add(rhs.0)
                .expect("SimDuration overflow while adding durations"),
        )
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("SimDuration underflow while subtracting durations"),
        )
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.3}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips() {
        assert_eq!(SimTime::from_secs(3).ticks(), 3 * TICKS_PER_SEC);
        assert_eq!(SimDuration::from_secs(2).as_secs_f64(), 2.0);
        assert_eq!(SimDuration::from_millis(1500).as_secs_f64(), 1.5);
        assert_eq!(SimDuration::from_secs_f64(0.25).ticks(), 250);
    }

    #[test]
    fn time_arithmetic() {
        let t0 = SimTime::from_secs(1);
        let t1 = t0 + SimDuration::from_millis(500);
        assert_eq!(t1.ticks(), 1500);
        assert_eq!(t1.since(t0), SimDuration::from_millis(500));
        assert_eq!(t1 - t0, SimDuration::from_millis(500));
    }

    #[test]
    #[should_panic(expected = "earlier instant is in the future")]
    fn negative_elapsed_panics() {
        let _ = SimTime::from_secs(1).since(SimTime::from_secs(2));
    }

    #[test]
    fn saturating_since_clamps() {
        assert_eq!(
            SimTime::from_secs(1).saturating_since(SimTime::from_secs(2)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn duration_scaling() {
        let d = SimDuration::from_secs(10);
        assert_eq!(d.mul_f64(0.5), SimDuration::from_secs(5));
        assert_eq!(d.saturating_mul(3), SimDuration::from_secs(30));
        // Rounding, not truncation.
        assert_eq!(SimDuration::from_ticks(3).mul_f64(0.5).ticks(), 2);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", SimTime::from_secs(2)), "t=2.000s");
        assert_eq!(format!("{}", SimDuration::from_millis(250)), "0.250s");
    }

    #[test]
    fn ordering_is_by_ticks() {
        assert!(SimTime::from_ticks(5) < SimTime::from_ticks(6));
        assert!(SimDuration::from_ticks(5) < SimDuration::from_ticks(6));
    }
}
