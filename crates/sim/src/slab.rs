//! Generation-stamped slab storage.
//!
//! The substrate fast path keeps per-process and per-job state in dense
//! slots instead of keyed maps: a [`Slot`] handle is resolved once at
//! registration and every later hot-path access is a bounds-checked array
//! index. Freed slots are recycled through a free list; each slot carries a
//! generation stamp that is bumped on removal, so a stale handle held
//! across a free/reuse cycle can never resurrect — `get` returns `None`
//! and `remove` panics instead of silently touching the new tenant.

use std::fmt;

/// A handle into a [`Slab`]: a dense index plus the generation stamp the
/// slot had when the value was inserted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Slot {
    index: u32,
    stamp: u32,
}

impl Slot {
    /// The dense index (exposed for debug output only; it is meaningless
    /// without the stamp).
    #[inline]
    pub fn index(self) -> usize {
        self.index as usize
    }
}

impl fmt::Display for Slot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "slot{}@{}", self.index, self.stamp)
    }
}

#[derive(Debug, Clone)]
struct Entry<T> {
    /// Bumped every time the slot's tenant is evicted; a handle whose stamp
    /// does not match is stale.
    stamp: u32,
    value: Option<T>,
}

/// A dense, generation-stamped arena of `T`.
///
/// ```
/// use phishare_sim::Slab;
///
/// let mut slab = Slab::new();
/// let a = slab.insert("a");
/// let b = slab.insert("b");
/// assert_eq!(slab.get(a), Some(&"a"));
/// assert_eq!(slab.remove(a), "a");
/// // The freed slot is recycled, but the stale handle stays dead.
/// let c = slab.insert("c");
/// assert_eq!(c.index(), a.index());
/// assert_eq!(slab.get(a), None);
/// assert_eq!(slab.get(c), Some(&"c"));
/// assert_eq!(slab.get(b), Some(&"b"));
/// ```
#[derive(Debug, Clone)]
pub struct Slab<T> {
    entries: Vec<Entry<T>>,
    /// Freed indices, reused LIFO (the hottest slot stays cache-warm).
    free: Vec<u32>,
    live: usize,
}

impl<T> Default for Slab<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Slab<T> {
    /// Create an empty slab.
    pub fn new() -> Self {
        Slab {
            entries: Vec::new(),
            free: Vec::new(),
            live: 0,
        }
    }

    /// Create an empty slab with room for `cap` values before reallocating.
    pub fn with_capacity(cap: usize) -> Self {
        Slab {
            entries: Vec::with_capacity(cap),
            free: Vec::with_capacity(cap),
            live: 0,
        }
    }

    /// Number of live values.
    #[inline]
    pub fn len(&self) -> usize {
        self.live
    }

    /// True when no values are stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Store `value`, reusing a freed slot when one exists.
    pub fn insert(&mut self, value: T) -> Slot {
        self.live += 1;
        if let Some(index) = self.free.pop() {
            let entry = &mut self.entries[index as usize];
            debug_assert!(entry.value.is_none(), "free list pointed at a live slot");
            entry.value = Some(value);
            Slot {
                index,
                stamp: entry.stamp,
            }
        } else {
            let index = u32::try_from(self.entries.len()).expect("slab index fits u32");
            self.entries.push(Entry {
                stamp: 0,
                value: Some(value),
            });
            Slot { index, stamp: 0 }
        }
    }

    /// The value at `slot`, or `None` when the handle is stale (the tenant
    /// was removed, whether or not the slot was reused since).
    #[inline]
    pub fn get(&self, slot: Slot) -> Option<&T> {
        match self.entries.get(slot.index as usize) {
            Some(e) if e.stamp == slot.stamp => e.value.as_ref(),
            _ => None,
        }
    }

    /// Mutable access to the value at `slot`; `None` when stale.
    #[inline]
    pub fn get_mut(&mut self, slot: Slot) -> Option<&mut T> {
        match self.entries.get_mut(slot.index as usize) {
            Some(e) if e.stamp == slot.stamp => e.value.as_mut(),
            _ => None,
        }
    }

    /// True when `slot` still names a live value.
    #[inline]
    pub fn contains(&self, slot: Slot) -> bool {
        self.get(slot).is_some()
    }

    /// Remove and return the value at `slot`, bumping the slot's stamp so
    /// every outstanding handle to it goes stale.
    ///
    /// # Panics
    /// Panics when the handle is stale — using a dead handle for a
    /// destructive operation is always a caller bug.
    pub fn remove(&mut self, slot: Slot) -> T {
        let entry = self
            .entries
            .get_mut(slot.index as usize)
            .filter(|e| e.stamp == slot.stamp)
            .unwrap_or_else(|| panic!("slab: removing through stale handle {slot}"));
        let value = entry
            .value
            .take()
            .unwrap_or_else(|| panic!("slab: removing through stale handle {slot}"));
        entry.stamp = entry.stamp.wrapping_add(1);
        self.free.push(slot.index);
        self.live -= 1;
        value
    }

    /// Drop every value, invalidating all outstanding handles, while
    /// keeping the allocated capacity for reuse.
    pub fn clear(&mut self) {
        for (index, entry) in self.entries.iter_mut().enumerate() {
            if entry.value.take().is_some() {
                entry.stamp = entry.stamp.wrapping_add(1);
                self.free.push(index as u32);
            }
        }
        self.live = 0;
    }

    /// Iterate the live values in slot-index order.
    pub fn iter(&self) -> impl Iterator<Item = (Slot, &T)> {
        self.entries.iter().enumerate().filter_map(|(i, e)| {
            e.value.as_ref().map(|v| {
                (
                    Slot {
                        index: i as u32,
                        stamp: e.stamp,
                    },
                    v,
                )
            })
        })
    }

    /// Iterate the live values mutably in slot-index order.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (Slot, &mut T)> {
        self.entries.iter_mut().enumerate().filter_map(|(i, e)| {
            let stamp = e.stamp;
            e.value.as_mut().map(move |v| {
                (
                    Slot {
                        index: i as u32,
                        stamp,
                    },
                    v,
                )
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove() {
        let mut slab = Slab::new();
        let a = slab.insert(10);
        let b = slab.insert(20);
        assert_eq!(slab.len(), 2);
        assert_eq!(slab.get(a), Some(&10));
        *slab.get_mut(b).unwrap() += 1;
        assert_eq!(slab.remove(b), 21);
        assert_eq!(slab.len(), 1);
        assert!(!slab.contains(b));
        assert!(slab.contains(a));
    }

    #[test]
    fn stale_handle_never_resurrects() {
        let mut slab = Slab::new();
        let a = slab.insert("old");
        slab.remove(a);
        let b = slab.insert("new");
        assert_eq!(b.index(), a.index(), "freed slot is recycled");
        assert_ne!(a, b);
        assert_eq!(slab.get(a), None);
        assert_eq!(slab.get_mut(a), None);
        assert!(!slab.contains(a));
        assert_eq!(slab.get(b), Some(&"new"));
    }

    #[test]
    #[should_panic(expected = "stale handle")]
    fn removing_through_stale_handle_panics() {
        let mut slab = Slab::new();
        let a = slab.insert(1);
        slab.remove(a);
        slab.insert(2); // reuses the slot under a fresh stamp
        slab.remove(a);
    }

    #[test]
    fn clear_invalidates_everything_and_reuses_capacity() {
        let mut slab = Slab::with_capacity(4);
        let handles: Vec<_> = (0..4).map(|i| slab.insert(i)).collect();
        slab.clear();
        assert!(slab.is_empty());
        for h in &handles {
            assert_eq!(slab.get(*h), None);
        }
        let fresh = slab.insert(99);
        assert!(fresh.index() < 4, "cleared slots are recycled");
        assert_eq!(slab.get(fresh), Some(&99));
    }

    #[test]
    fn iteration_is_slot_index_order() {
        let mut slab = Slab::new();
        let a = slab.insert("a");
        let _b = slab.insert("b");
        let _c = slab.insert("c");
        slab.remove(a);
        let order: Vec<&str> = slab.iter().map(|(_, v)| *v).collect();
        assert_eq!(order, vec!["b", "c"]);
        // iter_mut hands out valid handles alongside the values.
        let handles: Vec<Slot> = slab.iter_mut().map(|(s, _)| s).collect();
        for h in handles {
            assert!(slab.contains(h));
        }
    }

    #[test]
    fn free_list_is_lifo() {
        let mut slab = Slab::new();
        let a = slab.insert(1);
        let b = slab.insert(2);
        slab.remove(a);
        slab.remove(b);
        let c = slab.insert(3);
        assert_eq!(
            c.index(),
            b.index(),
            "most recently freed slot reused first"
        );
    }
}
