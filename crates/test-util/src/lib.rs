//! # phishare-test-util — shared test-only helpers
//!
//! Utilities that several crates' test suites need but production code
//! must never touch. Dev-dependency only: nothing here ships in a binary.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::{Mutex, MutexGuard};

/// Process-wide lock for tests that mutate environment variables.
///
/// `std::env::set_var` is not thread-safe against concurrent readers, and
/// `cargo test` runs tests on a thread pool, so every env-mutating test —
/// in *any* crate of the workspace — must hold this for its whole body.
/// All other code paths take the value through injectable parameters
/// instead (`*_override(raw: Option<&str>)` helpers), so only the one
/// test per variable that exercises the real `std::env` wiring needs it.
///
/// The lock is intentionally insensitive to poisoning: a panicking test
/// must not cascade into every later env test failing on a poisoned
/// mutex, so the guard is recovered and reused.
static ENV_LOCK: Mutex<()> = Mutex::new(());

/// Acquire the process-wide environment lock (see module docs).
pub fn env_lock() -> MutexGuard<'static, ()> {
    ENV_LOCK
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Run `body` with `var` set to `value` under the env lock, restoring the
/// previous state (set or unset) afterwards. If `body` panics the variable
/// is left modified — the poison-insensitive lock keeps later env tests
/// running, but they should not assume a clean slate after a failure.
pub fn with_env_var<T>(var: &str, value: &str, body: impl FnOnce() -> T) -> T {
    let _guard = env_lock();
    let previous = std::env::var(var).ok();
    std::env::set_var(var, value);
    let out = body();
    match previous {
        Some(v) => std::env::set_var(var, v),
        None => std::env::remove_var(var),
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn with_env_var_sets_and_restores() {
        let var = "PHISHARE_TEST_UTIL_PROBE";
        assert!(std::env::var(var).is_err());
        let seen = with_env_var(var, "42", || std::env::var(var).ok());
        assert_eq!(seen.as_deref(), Some("42"));
        assert!(std::env::var(var).is_err());
    }

    #[test]
    fn env_lock_recovers_from_poison() {
        // Two sequential acquisitions must both succeed.
        drop(env_lock());
        drop(env_lock());
    }
}
