//! Property tests for the schedd queue: the job state machine never enters
//! an inconsistent state under arbitrary operation sequences, and FIFO
//! order is preserved through hold/release churn.

use phishare_classad::ClassAd;
use phishare_condor::{JobQueue, JobState, QueueTotals, SlotId};
use phishare_sim::SimTime;
use phishare_workload::JobId;
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Submit { job: u64, held: bool },
    Hold { job: u64 },
    Release { job: u64 },
    Match { job: u64 },
    Run { job: u64 },
    Complete { job: u64 },
    Remove { job: u64 },
    Qedit { job: u64 },
}

fn arb_op() -> impl Strategy<Value = Op> {
    let j = 0u64..8;
    prop_oneof![
        (j.clone(), any::<bool>()).prop_map(|(job, held)| Op::Submit { job, held }),
        j.clone().prop_map(|job| Op::Hold { job }),
        j.clone().prop_map(|job| Op::Release { job }),
        j.clone().prop_map(|job| Op::Match { job }),
        j.clone().prop_map(|job| Op::Run { job }),
        j.clone().prop_map(|job| Op::Complete { job }),
        j.clone().prop_map(|job| Op::Remove { job }),
        j.prop_map(|job| Op::Qedit { job }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Arbitrary operation sequences: every op either succeeds with a legal
    /// transition or returns an error; totals always add up; terminal jobs
    /// never move again.
    #[test]
    fn queue_state_machine_is_sound(ops in prop::collection::vec(arb_op(), 1..60)) {
        let mut q = JobQueue::new();
        let slot = SlotId { node: 1, slot: 1 };
        let mut submitted = 0usize;

        for op in ops {
            let before: Vec<JobState> =
                q.job_ids().iter().map(|id| q.get(*id).unwrap().state).collect();
            let outcome = match op {
                Op::Submit { job, held } => {
                    let r = if held {
                        q.submit_held(JobId(job), ClassAd::new(), SimTime::ZERO)
                    } else {
                        q.submit(JobId(job), ClassAd::new(), SimTime::ZERO)
                    };
                    if r.is_ok() {
                        submitted += 1;
                    }
                    r
                }
                Op::Hold { job } => q.hold(JobId(job)),
                Op::Release { job } => q.release(JobId(job)),
                Op::Match { job } => q.set_matched(JobId(job), slot),
                Op::Run { job } => q.set_running(JobId(job)),
                Op::Complete { job } => q.set_completed(JobId(job)),
                Op::Remove { job } => q.set_removed(JobId(job)),
                Op::Qedit { job } => q.qedit_expr(JobId(job), "Requirements", "true"),
            };

            // A failed op must not have mutated any job state.
            if outcome.is_err() {
                let after: Vec<JobState> =
                    q.job_ids().iter().map(|id| q.get(*id).unwrap().state).collect();
                prop_assert_eq!(&before[..after.len().min(before.len())],
                                &after[..after.len().min(before.len())]);
            }

            // Totals always account for every submitted job.
            let t = QueueTotals::of(&q);
            prop_assert_eq!(t.total(), submitted);
            // pending ∪ held are disjoint subsets of non-terminal jobs.
            let pending = q.pending();
            let held = q.held();
            for id in &pending {
                prop_assert!(!held.contains(id));
                prop_assert!(q.get(*id).unwrap().state.is_idle());
            }
        }
    }

    /// Queue order under hold/release churn matches HTCondor's semantics:
    /// holding a job forfeits its place, and a released job re-enters
    /// negotiation order at the back (fresh tail), never mid-queue. Both
    /// the idle and held orders are tracked against a simple list oracle.
    #[test]
    fn hold_release_churn_is_fresh_tail_fifo(toggles in prop::collection::vec((0u64..10, any::<bool>()), 0..40)) {
        let mut q = JobQueue::new();
        let mut idle_oracle: Vec<JobId> = Vec::new();
        let mut held_oracle: Vec<JobId> = Vec::new();
        for i in 0..10u64 {
            q.submit(JobId(i), ClassAd::new(), SimTime::ZERO).unwrap();
            idle_oracle.push(JobId(i));
        }
        for (job, to_hold) in toggles {
            if to_hold {
                if q.hold(JobId(job)).is_ok() {
                    idle_oracle.retain(|&id| id != JobId(job));
                    held_oracle.push(JobId(job));
                }
            } else if q.release(JobId(job)).is_ok() {
                held_oracle.retain(|&id| id != JobId(job));
                idle_oracle.push(JobId(job));
            }
        }
        prop_assert_eq!(q.pending(), idle_oracle, "pending order diverged from the oracle");
        prop_assert_eq!(q.held(), held_oracle, "held order diverged from the oracle");
    }
}
