//! Differential property tests for the matchmaking fast path.
//!
//! The negotiator has two implementations: the compiled/indexed fast path
//! (`negotiate_with_stats`) and the retained naive reference that re-parses
//! and re-evaluates every (job, slot) pair (`negotiate_naive_with_stats`).
//! These tests drive both over randomized clusters and job mixes and require
//! *identical* results: same matches in the same order, same cycle stats,
//! same final collector state (including the in-cycle resource decrements
//! and every index), and same queue state.

use phishare_classad::ad::{RANK, REQUIREMENTS};
use phishare_condor::attrs;
use phishare_condor::{Collector, JobQueue, Negotiator, SlotId};
use phishare_sim::SimTime;
use phishare_workload::JobId;
use proptest::prelude::*;

/// One node of the generated cluster.
#[derive(Debug, Clone)]
struct NodeDesc {
    slots: u32,
    free_mem: i64,
    devices_free: i64,
}

/// The matchmaking personality of one generated job.
#[derive(Debug, Clone)]
enum JobKind {
    /// `PhiDevices >= 1 && PhiFreeMemory >= MY.RequestPhiMemory`.
    Sharing { mem: i64 },
    /// `PhiDevicesFree >= 1`, exclusive flag set.
    Exclusive { mem: i64 },
    /// Pinned to one slot name (which may not exist).
    PinSlot { node: u32, slot: u32 },
    /// Pinned to one node name (which may not exist).
    PinNode { node: u32 },
    /// Constant-false requirements.
    Never,
    /// No requirements at all: matches any slot.
    Always,
    /// A disjunction the compiler cannot reduce to guards (residual path).
    ResidualOr { mem: i64 },
    /// Guard on an attribute machines do not advertise.
    MissingAttr,
}

fn arb_node() -> impl Strategy<Value = NodeDesc> {
    (
        1u32..=3,
        prop_oneof![Just(0i64), Just(512), Just(1024), Just(3000), Just(7680)],
        0i64..=2,
    )
        .prop_map(|(slots, free_mem, devices_free)| NodeDesc {
            slots,
            free_mem,
            devices_free,
        })
}

fn arb_job_kind() -> impl Strategy<Value = JobKind> {
    let mem = prop_oneof![
        Just(100i64),
        Just(512),
        Just(1024),
        Just(3000),
        Just(6000),
        Just(9000)
    ];
    prop_oneof![
        mem.clone().prop_map(|mem| JobKind::Sharing { mem }),
        mem.clone().prop_map(|mem| JobKind::Exclusive { mem }),
        (1u32..=6, 1u32..=4).prop_map(|(node, slot)| JobKind::PinSlot { node, slot }),
        (1u32..=6).prop_map(|node| JobKind::PinNode { node }),
        Just(JobKind::Never),
        Just(JobKind::Always),
        mem.prop_map(|mem| JobKind::ResidualOr { mem }),
        Just(JobKind::MissingAttr),
    ]
}

fn job_ad(kind: &JobKind, ranked: bool) -> phishare_classad::ClassAd {
    let mut ad = phishare_classad::ClassAd::new();
    ad.insert(attrs::REQUEST_EXCLUSIVE_PHI, false);
    match kind {
        JobKind::Sharing { mem } => {
            ad.insert(attrs::REQUEST_PHI_MEMORY, *mem);
            ad.insert_expr(
                REQUIREMENTS,
                "TARGET.PhiDevices >= 1 && TARGET.PhiFreeMemory >= MY.RequestPhiMemory",
            )
            .unwrap();
        }
        JobKind::Exclusive { mem } => {
            ad.insert(attrs::REQUEST_PHI_MEMORY, *mem);
            ad.insert(attrs::REQUEST_EXCLUSIVE_PHI, true);
            ad.insert_expr(REQUIREMENTS, "TARGET.PhiDevicesFree >= 1")
                .unwrap();
        }
        JobKind::PinSlot { node, slot } => {
            ad.insert_expr(
                REQUIREMENTS,
                &attrs::pin_requirements(&format!("slot{slot}@node{node}")),
            )
            .unwrap();
        }
        JobKind::PinNode { node } => {
            ad.insert_expr(REQUIREMENTS, &attrs::pin_to_node(&format!("node{node}")))
                .unwrap();
        }
        JobKind::Never => {
            ad.insert_expr(REQUIREMENTS, "false").unwrap();
        }
        JobKind::Always => {}
        JobKind::ResidualOr { mem } => {
            ad.insert(attrs::REQUEST_PHI_MEMORY, *mem);
            ad.insert_expr(
                REQUIREMENTS,
                "TARGET.PhiFreeMemory >= MY.RequestPhiMemory || TARGET.PhiDevicesFree >= 2",
            )
            .unwrap();
        }
        JobKind::MissingAttr => {
            ad.insert_expr(REQUIREMENTS, "TARGET.NoSuchAttribute >= 1")
                .unwrap();
        }
    }
    if ranked {
        ad.insert_expr(RANK, "TARGET.PhiFreeMemory").unwrap();
    }
    ad
}

/// Build the identical (queue, collector) pair twice from the generated
/// scenario, so the fast and naive paths start from equal states.
fn build(nodes: &[NodeDesc], jobs: &[(JobKind, bool)], claims: &[bool]) -> (JobQueue, Collector) {
    let mut collector = Collector::new();
    let mut all_slots = Vec::new();
    for (n, node) in nodes.iter().enumerate() {
        let node_idx = n as u32 + 1;
        for s in 1..=node.slots {
            let id = SlotId {
                node: node_idx,
                slot: s,
            };
            let ad = attrs::machine_ad(
                &id.name(),
                &format!("node{node_idx}"),
                1,
                8192,
                node.free_mem.max(0) as u64,
                node.devices_free.max(0) as u32,
            );
            collector.advertise(id, ad);
            all_slots.push(id);
        }
    }
    for (slot, claim) in all_slots.iter().zip(claims.iter()) {
        if *claim {
            collector.claim(*slot);
        }
    }
    let mut queue = JobQueue::new();
    for (i, (kind, ranked)) in jobs.iter().enumerate() {
        queue
            .submit(JobId(i as u64), job_ad(kind, *ranked), SimTime::ZERO)
            .unwrap();
    }
    (queue, collector)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The fast path is result-identical to the naive evaluator: matches
    /// (content *and* order), cycle stats, final collector state (ads,
    /// claims, indexes — `Collector: PartialEq` covers all of it), and the
    /// queue's pending set.
    #[test]
    fn fast_path_matches_naive_evaluator(
        nodes in prop::collection::vec(arb_node(), 1..=5),
        jobs in prop::collection::vec((arb_job_kind(), any::<bool>()), 1..=10),
        claims in prop::collection::vec(any::<bool>(), 0..=15),
    ) {
        let (mut q_fast, mut c_fast) = build(&nodes, &jobs, &claims);
        let (mut q_naive, mut c_naive) = build(&nodes, &jobs, &claims);
        prop_assert_eq!(&c_fast, &c_naive, "builders must start equal");

        let negotiator = Negotiator::default();
        let (fast_matches, fast_stats) =
            negotiator.negotiate_with_stats(&mut q_fast, &mut c_fast);
        let (naive_matches, naive_stats) =
            negotiator.negotiate_naive_with_stats(&mut q_naive, &mut c_naive);

        prop_assert_eq!(&fast_matches, &naive_matches);
        prop_assert_eq!(fast_stats, naive_stats);
        prop_assert_eq!(&c_fast, &c_naive, "collector states diverged");
        prop_assert_eq!(q_fast.pending(), q_naive.pending());
        prop_assert_eq!(q_fast.active_counts(), q_naive.active_counts());
    }

    /// Two consecutive cycles stay identical too — the second cycle starts
    /// from the first one's decremented ads and mutated indexes, which is
    /// where stale-index bugs would surface.
    #[test]
    fn fast_path_matches_naive_over_two_cycles(
        nodes in prop::collection::vec(arb_node(), 1..=4),
        jobs in prop::collection::vec((arb_job_kind(), any::<bool>()), 1..=8),
    ) {
        let (mut q_fast, mut c_fast) = build(&nodes, &jobs, &[]);
        let (mut q_naive, mut c_naive) = build(&nodes, &jobs, &[]);
        let negotiator = Negotiator::default();

        let first_fast = negotiator.negotiate_with_stats(&mut q_fast, &mut c_fast);
        let first_naive = negotiator.negotiate_naive_with_stats(&mut q_naive, &mut c_naive);
        prop_assert_eq!(first_fast, first_naive);

        // Release the first cycle's claims on both sides, as dispatch would.
        let claimed: Vec<SlotId> = c_fast
            .slots()
            .filter(|(_, s)| s.claimed)
            .map(|(id, _)| *id)
            .collect();
        for slot in claimed {
            c_fast.release(slot);
            c_naive.release(slot);
        }

        let second_fast = negotiator.negotiate_with_stats(&mut q_fast, &mut c_fast);
        let second_naive = negotiator.negotiate_naive_with_stats(&mut q_naive, &mut c_naive);
        prop_assert_eq!(second_fast, second_naive);
        prop_assert_eq!(&c_fast, &c_naive);
    }
}

/// Regression: a match's same-cycle `PhiFreeMemory` decrement must be
/// reflected in the collector's free-memory index immediately, so a later
/// job in the same cycle cannot match against stale capacity.
#[test]
fn same_cycle_decrement_is_visible_in_free_mem_index() {
    let mut collector = Collector::new();
    for s in 1..=2u32 {
        let id = SlotId { node: 1, slot: s };
        collector.advertise(id, attrs::machine_ad(&id.name(), "node1", 1, 8192, 7680, 1));
    }
    let mut queue = JobQueue::new();
    queue
        .submit(
            JobId(0),
            job_ad(&JobKind::Sharing { mem: 5000 }, false),
            SimTime::ZERO,
        )
        .unwrap();
    queue
        .submit(
            JobId(1),
            job_ad(&JobKind::Sharing { mem: 4000 }, false),
            SimTime::ZERO,
        )
        .unwrap();

    let (matches, stats) = Negotiator::default().negotiate_with_stats(&mut queue, &mut collector);

    // Job 0 takes 5000 of the node's 7680; job 1's 4000 no longer fits.
    assert_eq!(matches.len(), 1);
    assert_eq!(matches[0].job, JobId(0));
    assert_eq!(stats.matched, 1);
    assert_eq!(stats.unmatched, 1);
    assert_eq!(queue.pending(), vec![JobId(1)]);

    // The index answers with the decremented value: nothing at >= 4000,
    // and the one unclaimed slot shows 2680 left.
    assert_eq!(
        collector.unclaimed_with_free_mem_at_least(4000.0).count(),
        0
    );
    let remaining: Vec<SlotId> = collector.unclaimed_with_free_mem_at_least(2680.0).collect();
    assert_eq!(remaining, vec![SlotId { node: 1, slot: 2 }]);
}
