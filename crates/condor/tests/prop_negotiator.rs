//! Differential property tests for the matchmaking paths.
//!
//! The negotiator has three implementations: the incremental delta path
//! (`negotiate_delta_with_stats`, the default), the compiled/indexed
//! full-rematch fast path (`negotiate_full_with_stats`), and the retained
//! naive reference that re-parses and re-evaluates every (job, slot) pair
//! (`negotiate_naive_with_stats`). These tests drive all of them over
//! randomized clusters, job mixes, and churn sequences and require
//! *identical* results: same matches in the same order, same cycle stats,
//! same final collector state (including the in-cycle resource decrements
//! and every index), and same queue state.

use phishare_classad::ad::{RANK, REQUIREMENTS};
use phishare_condor::attrs;
use phishare_condor::{Collector, JobQueue, Negotiator, SlotId};
use phishare_sim::SimTime;
use phishare_workload::JobId;
use proptest::prelude::*;

/// One node of the generated cluster.
#[derive(Debug, Clone)]
struct NodeDesc {
    slots: u32,
    free_mem: i64,
    devices_free: i64,
}

/// The matchmaking personality of one generated job.
#[derive(Debug, Clone)]
enum JobKind {
    /// `PhiDevices >= 1 && PhiFreeMemory >= MY.RequestPhiMemory`.
    Sharing { mem: i64 },
    /// `PhiDevicesFree >= 1`, exclusive flag set.
    Exclusive { mem: i64 },
    /// Pinned to one slot name (which may not exist).
    PinSlot { node: u32, slot: u32 },
    /// Pinned to one node name (which may not exist).
    PinNode { node: u32 },
    /// Constant-false requirements.
    Never,
    /// No requirements at all: matches any slot.
    Always,
    /// A disjunction the compiler cannot reduce to guards (residual path).
    ResidualOr { mem: i64 },
    /// Guard on an attribute machines do not advertise.
    MissingAttr,
}

fn arb_node() -> impl Strategy<Value = NodeDesc> {
    (
        1u32..=3,
        prop_oneof![Just(0i64), Just(512), Just(1024), Just(3000), Just(7680)],
        0i64..=2,
    )
        .prop_map(|(slots, free_mem, devices_free)| NodeDesc {
            slots,
            free_mem,
            devices_free,
        })
}

fn arb_job_kind() -> impl Strategy<Value = JobKind> {
    let mem = prop_oneof![
        Just(100i64),
        Just(512),
        Just(1024),
        Just(3000),
        Just(6000),
        Just(9000)
    ];
    prop_oneof![
        mem.clone().prop_map(|mem| JobKind::Sharing { mem }),
        mem.clone().prop_map(|mem| JobKind::Exclusive { mem }),
        (1u32..=6, 1u32..=4).prop_map(|(node, slot)| JobKind::PinSlot { node, slot }),
        (1u32..=6).prop_map(|node| JobKind::PinNode { node }),
        Just(JobKind::Never),
        Just(JobKind::Always),
        mem.prop_map(|mem| JobKind::ResidualOr { mem }),
        Just(JobKind::MissingAttr),
    ]
}

fn job_ad(kind: &JobKind, ranked: bool) -> phishare_classad::ClassAd {
    let mut ad = phishare_classad::ClassAd::new();
    ad.insert(attrs::REQUEST_EXCLUSIVE_PHI, false);
    match kind {
        JobKind::Sharing { mem } => {
            ad.insert(attrs::REQUEST_PHI_MEMORY, *mem);
            ad.insert_expr(
                REQUIREMENTS,
                "TARGET.PhiDevices >= 1 && TARGET.PhiFreeMemory >= MY.RequestPhiMemory",
            )
            .unwrap();
        }
        JobKind::Exclusive { mem } => {
            ad.insert(attrs::REQUEST_PHI_MEMORY, *mem);
            ad.insert(attrs::REQUEST_EXCLUSIVE_PHI, true);
            ad.insert_expr(REQUIREMENTS, "TARGET.PhiDevicesFree >= 1")
                .unwrap();
        }
        JobKind::PinSlot { node, slot } => {
            ad.insert_expr(
                REQUIREMENTS,
                &attrs::pin_requirements(&format!("slot{slot}@node{node}")),
            )
            .unwrap();
        }
        JobKind::PinNode { node } => {
            ad.insert_expr(REQUIREMENTS, &attrs::pin_to_node(&format!("node{node}")))
                .unwrap();
        }
        JobKind::Never => {
            ad.insert_expr(REQUIREMENTS, "false").unwrap();
        }
        JobKind::Always => {}
        JobKind::ResidualOr { mem } => {
            ad.insert(attrs::REQUEST_PHI_MEMORY, *mem);
            ad.insert_expr(
                REQUIREMENTS,
                "TARGET.PhiFreeMemory >= MY.RequestPhiMemory || TARGET.PhiDevicesFree >= 2",
            )
            .unwrap();
        }
        JobKind::MissingAttr => {
            ad.insert_expr(REQUIREMENTS, "TARGET.NoSuchAttribute >= 1")
                .unwrap();
        }
    }
    if ranked {
        ad.insert_expr(RANK, "TARGET.PhiFreeMemory").unwrap();
    }
    ad
}

/// Build the identical (queue, collector) pair twice from the generated
/// scenario, so the fast and naive paths start from equal states.
fn build(nodes: &[NodeDesc], jobs: &[(JobKind, bool)], claims: &[bool]) -> (JobQueue, Collector) {
    build_parts(nodes, jobs, claims, 1)
}

/// [`build`] with an explicit collector partition count.
fn build_parts(
    nodes: &[NodeDesc],
    jobs: &[(JobKind, bool)],
    claims: &[bool],
    parts: usize,
) -> (JobQueue, Collector) {
    let mut collector = Collector::with_partitions(parts);
    let mut all_slots = Vec::new();
    for (n, node) in nodes.iter().enumerate() {
        let node_idx = n as u32 + 1;
        for s in 1..=node.slots {
            let id = SlotId {
                node: node_idx,
                slot: s,
            };
            let ad = attrs::machine_ad(
                &id.name(),
                &format!("node{node_idx}"),
                1,
                8192,
                node.free_mem.max(0) as u64,
                node.devices_free.max(0) as u32,
            );
            collector.advertise(id, ad);
            all_slots.push(id);
        }
    }
    for (slot, claim) in all_slots.iter().zip(claims.iter()) {
        if *claim {
            collector.claim(*slot);
        }
    }
    let mut queue = JobQueue::new();
    for (i, (kind, ranked)) in jobs.iter().enumerate() {
        queue
            .submit(JobId(i as u64), job_ad(kind, *ranked), SimTime::ZERO)
            .unwrap();
    }
    (queue, collector)
}

/// One churn action applied identically to both twins between cycles.
/// Indices are taken modulo the live population at application time, so
/// every generated op is applicable and both twins see the same effect.
#[derive(Debug, Clone)]
enum ChurnOp {
    /// Release the i-th currently-claimed slot.
    Release(usize),
    /// Claim the i-th currently-unclaimed slot out from under the queue
    /// (an external schedd winning the slot).
    Claim(usize),
    /// Refresh a slot's Phi availability in place.
    Refresh { slot: usize, mem: i64, devs: i64 },
    /// Node churn: every ad the node ever advertised is invalidated.
    InvalidateNode(u32),
    /// Node (re)join: advertise two fresh slots on the node.
    Advertise { node: u32, mem: i64 },
    /// Rewrite a job's requested memory (folds into its compiled guards).
    QeditMem { job: usize, mem: i64 },
    /// An open-arrival submission mid-stream.
    Submit(JobKind),
}

fn arb_churn() -> impl Strategy<Value = ChurnOp> {
    let mem = prop_oneof![Just(0i64), Just(512), Just(3000), Just(7680)];
    prop_oneof![
        (0usize..16).prop_map(ChurnOp::Release),
        (0usize..16).prop_map(ChurnOp::Claim),
        (0usize..16, mem.clone(), 0i64..=2).prop_map(|(slot, mem, devs)| ChurnOp::Refresh {
            slot,
            mem,
            devs
        }),
        (1u32..=4).prop_map(ChurnOp::InvalidateNode),
        (1u32..=4, mem.clone()).prop_map(|(node, mem)| ChurnOp::Advertise { node, mem }),
        (0usize..12, mem).prop_map(|(job, mem)| ChurnOp::QeditMem { job, mem }),
        arb_job_kind().prop_map(ChurnOp::Submit),
    ]
}

/// Apply one churn op to one (queue, collector) twin. `next_id` is the
/// twin's open-arrival id counter (kept in lockstep across twins).
fn apply_churn(op: &ChurnOp, queue: &mut JobQueue, collector: &mut Collector, next_id: &mut u64) {
    match op {
        ChurnOp::Release(i) => {
            let claimed: Vec<SlotId> = collector
                .slots()
                .filter(|(_, s)| s.claimed)
                .map(|(id, _)| *id)
                .collect();
            if !claimed.is_empty() {
                collector.release(claimed[i % claimed.len()]);
            }
        }
        ChurnOp::Claim(i) => {
            let unclaimed = collector.unclaimed();
            if !unclaimed.is_empty() {
                collector.claim(unclaimed[i % unclaimed.len()]);
            }
        }
        ChurnOp::Refresh { slot, mem, devs } => {
            let slots: Vec<SlotId> = collector.slots().map(|(id, _)| *id).collect();
            if !slots.is_empty() {
                collector.refresh_phi_availability(
                    slots[slot % slots.len()],
                    *mem as u64,
                    *devs as u32,
                );
            }
        }
        ChurnOp::InvalidateNode(node) => {
            collector.invalidate_node(*node);
        }
        ChurnOp::Advertise { node, mem } => {
            for s in 1..=2u32 {
                let id = SlotId {
                    node: *node,
                    slot: s,
                };
                let ad =
                    attrs::machine_ad(&id.name(), &format!("node{node}"), 1, 8192, *mem as u64, 1);
                collector.advertise(id, ad);
            }
        }
        ChurnOp::QeditMem { job, mem } => {
            let ids = queue.pending();
            if !ids.is_empty() {
                queue
                    .qedit_value(ids[job % ids.len()], attrs::REQUEST_PHI_MEMORY, *mem)
                    .unwrap();
            }
        }
        ChurnOp::Submit(kind) => {
            queue
                .submit(JobId(*next_id), job_ad(kind, false), SimTime::ZERO)
                .unwrap();
            *next_id += 1;
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Delta and full paths are result-identical to the naive evaluator:
    /// matches (content *and* order), cycle stats, final collector state
    /// (ads and claims — `Collector: PartialEq` covers the authoritative
    /// state), and the queue's pending set.
    #[test]
    fn all_paths_match_naive_evaluator(
        nodes in prop::collection::vec(arb_node(), 1..=5),
        jobs in prop::collection::vec((arb_job_kind(), any::<bool>()), 1..=10),
        claims in prop::collection::vec(any::<bool>(), 0..=15),
    ) {
        let (mut q_delta, mut c_delta) = build(&nodes, &jobs, &claims);
        let (mut q_full, mut c_full) = build(&nodes, &jobs, &claims);
        let (mut q_naive, mut c_naive) = build(&nodes, &jobs, &claims);
        prop_assert_eq!(&c_delta, &c_naive, "builders must start equal");

        let negotiator = Negotiator::default();
        let delta = negotiator.negotiate_delta_with_stats(&mut q_delta, &mut c_delta);
        let full = negotiator.negotiate_full_with_stats(&mut q_full, &mut c_full);
        let naive = negotiator.negotiate_naive_with_stats(&mut q_naive, &mut c_naive);

        prop_assert_eq!(&delta, &full, "delta diverged from full oracle");
        prop_assert_eq!(&full, &naive, "full diverged from naive reference");
        prop_assert_eq!(&c_delta, &c_full, "collector states diverged");
        prop_assert_eq!(&c_full, &c_naive, "collector states diverged");
        prop_assert_eq!(q_delta.pending(), q_naive.pending());
        prop_assert_eq!(q_full.pending(), q_naive.pending());
        prop_assert_eq!(q_delta.active_counts(), q_naive.active_counts());
    }

    /// Two consecutive cycles stay identical too — the second cycle starts
    /// from the first one's decremented ads, mutated indexes, and (for the
    /// delta path) unmatched certificates, which is where stale-index and
    /// stale-certificate bugs would surface.
    #[test]
    fn all_paths_match_naive_over_two_cycles(
        nodes in prop::collection::vec(arb_node(), 1..=4),
        jobs in prop::collection::vec((arb_job_kind(), any::<bool>()), 1..=8),
    ) {
        let (mut q_delta, mut c_delta) = build(&nodes, &jobs, &[]);
        let (mut q_full, mut c_full) = build(&nodes, &jobs, &[]);
        let (mut q_naive, mut c_naive) = build(&nodes, &jobs, &[]);
        let negotiator = Negotiator::default();

        let first_delta = negotiator.negotiate_delta_with_stats(&mut q_delta, &mut c_delta);
        let first_full = negotiator.negotiate_full_with_stats(&mut q_full, &mut c_full);
        let first_naive = negotiator.negotiate_naive_with_stats(&mut q_naive, &mut c_naive);
        prop_assert_eq!(&first_delta, &first_full);
        prop_assert_eq!(&first_full, &first_naive);

        // Release the first cycle's claims on all sides, as dispatch would.
        let claimed: Vec<SlotId> = c_naive
            .slots()
            .filter(|(_, s)| s.claimed)
            .map(|(id, _)| *id)
            .collect();
        for slot in claimed {
            c_delta.release(slot);
            c_full.release(slot);
            c_naive.release(slot);
        }

        let second_delta = negotiator.negotiate_delta_with_stats(&mut q_delta, &mut c_delta);
        let second_full = negotiator.negotiate_full_with_stats(&mut q_full, &mut c_full);
        let second_naive = negotiator.negotiate_naive_with_stats(&mut q_naive, &mut c_naive);
        prop_assert_eq!(&second_delta, &second_full);
        prop_assert_eq!(&second_full, &second_naive);
        prop_assert_eq!(&c_delta, &c_full);
        prop_assert_eq!(&c_full, &c_naive);
    }

    /// The core delta-exactness property: across an arbitrary multi-cycle
    /// history of churn — claims and releases out from under the queue, ad
    /// refreshes, node loss and rejoin, qedits, open-arrival submissions —
    /// the delta path stays bit-identical to the full-rematch oracle in
    /// every cycle.
    #[test]
    fn delta_matches_full_oracle_across_random_churn(
        nodes in prop::collection::vec(arb_node(), 1..=4),
        jobs in prop::collection::vec((arb_job_kind(), any::<bool>()), 0..=8),
        rounds in prop::collection::vec(prop::collection::vec(arb_churn(), 0..=5), 1..=5),
    ) {
        let (mut q_delta, mut c_delta) = build(&nodes, &jobs, &[]);
        let (mut q_full, mut c_full) = build(&nodes, &jobs, &[]);
        let negotiator = Negotiator::default();
        let mut next_delta = jobs.len() as u64;
        let mut next_full = jobs.len() as u64;

        for (r, ops) in rounds.iter().enumerate() {
            for op in ops {
                apply_churn(op, &mut q_delta, &mut c_delta, &mut next_delta);
                apply_churn(op, &mut q_full, &mut c_full, &mut next_full);
            }
            prop_assert_eq!(&c_delta, &c_full, "churn diverged before round {}", r);

            let delta = negotiator.negotiate_delta_with_stats(&mut q_delta, &mut c_delta);
            let full = negotiator.negotiate_full_with_stats(&mut q_full, &mut c_full);
            prop_assert_eq!(&delta, &full, "round {} matches diverged", r);
            prop_assert_eq!(&c_delta, &c_full, "round {} collectors diverged", r);
            prop_assert_eq!(q_delta.pending(), q_full.pending(), "round {} pending diverged", r);
        }
    }

    /// Partition-count invariance: the partitioned delta screen produces
    /// bit-identical matches, cycle stats, queue state, and collector state
    /// for every partition count across arbitrary churn histories. P = 1 is
    /// the PR 6 job-sharded screen (the bench baseline); 2, 3, and 8
    /// exercise uneven node→partition maps, cross-partition winner merges,
    /// and per-partition dirty watermarks. `Collector: PartialEq` is itself
    /// partition-layout-blind, so the final-state comparisons are exact.
    #[test]
    fn partition_count_is_invisible_across_random_churn(
        nodes in prop::collection::vec(arb_node(), 1..=4),
        jobs in prop::collection::vec((arb_job_kind(), any::<bool>()), 0..=8),
        rounds in prop::collection::vec(prop::collection::vec(arb_churn(), 0..=5), 1..=4),
    ) {
        const PARTS: [usize; 4] = [1, 2, 3, 8];
        let negotiator = Negotiator::default();
        let mut twins: Vec<(JobQueue, Collector, u64)> = PARTS
            .iter()
            .map(|&p| {
                let (q, c) = build_parts(&nodes, &jobs, &[], p);
                (q, c, jobs.len() as u64)
            })
            .collect();

        for (r, ops) in rounds.iter().enumerate() {
            let mut outcomes = Vec::new();
            for (queue, collector, next_id) in twins.iter_mut() {
                for op in ops {
                    apply_churn(op, queue, collector, next_id);
                }
                outcomes.push(negotiator.negotiate_delta_with_stats(queue, collector));
            }
            for (i, outcome) in outcomes.iter().enumerate().skip(1) {
                prop_assert_eq!(
                    &outcomes[0], outcome,
                    "round {}: P={} matches diverged from P=1", r, PARTS[i]
                );
                prop_assert_eq!(
                    &twins[0].1, &twins[i].1,
                    "round {}: P={} collector diverged from P=1", r, PARTS[i]
                );
                prop_assert_eq!(
                    twins[0].0.pending(), twins[i].0.pending(),
                    "round {}: P={} pending diverged from P=1", r, PARTS[i]
                );
            }
        }
    }
}

/// Regression: a match's same-cycle `PhiFreeMemory` decrement must be
/// reflected in the collector's free-memory index immediately, so a later
/// job in the same cycle cannot match against stale capacity.
#[test]
fn same_cycle_decrement_is_visible_in_free_mem_index() {
    let mut collector = Collector::new();
    for s in 1..=2u32 {
        let id = SlotId { node: 1, slot: s };
        collector.advertise(id, attrs::machine_ad(&id.name(), "node1", 1, 8192, 7680, 1));
    }
    let mut queue = JobQueue::new();
    queue
        .submit(
            JobId(0),
            job_ad(&JobKind::Sharing { mem: 5000 }, false),
            SimTime::ZERO,
        )
        .unwrap();
    queue
        .submit(
            JobId(1),
            job_ad(&JobKind::Sharing { mem: 4000 }, false),
            SimTime::ZERO,
        )
        .unwrap();

    let (matches, stats) = Negotiator::default().negotiate_with_stats(&mut queue, &mut collector);

    // Job 0 takes 5000 of the node's 7680; job 1's 4000 no longer fits.
    assert_eq!(matches.len(), 1);
    assert_eq!(matches[0].job, JobId(0));
    assert_eq!(stats.matched, 1);
    assert_eq!(stats.unmatched, 1);
    assert_eq!(queue.pending(), vec![JobId(1)]);

    // The index answers with the decremented value: nothing at >= 4000,
    // and the one unclaimed slot shows 2680 left.
    assert_eq!(
        collector.unclaimed_with_free_mem_at_least(4000.0).count(),
        0
    );
    let remaining: Vec<SlotId> = collector.unclaimed_with_free_mem_at_least(2680.0).collect();
    assert_eq!(remaining, vec![SlotId { node: 1, slot: 2 }]);
}

/// Generalization of the regression above to an *arbitrary* guard-indexed
/// attribute: the negotiation cycle registers an index for whatever numeric
/// guard the jobs carry (here a made-up `TapeDrives`), and mid-cycle
/// mutations — a claim taking the only qualifying slot, then an in-place
/// decrement — must be visible to later range scans in the same way
/// `PhiFreeMemory` decrements are. Delta and full paths must agree on all
/// of it.
#[test]
fn same_cycle_coherence_holds_for_arbitrary_guard_indexed_attrs() {
    let build = || {
        let mut collector = Collector::new();
        for (s, drives) in [(1u32, 3i64), (2, 1)] {
            let id = SlotId { node: 1, slot: s };
            let mut ad = attrs::machine_ad(&id.name(), "node1", 1, 8192, 7680, 1);
            ad.insert("TapeDrives", drives);
            collector.advertise(id, ad);
        }
        let mut queue = JobQueue::new();
        for i in 0..3u64 {
            let mut ad = phishare_classad::ClassAd::new();
            // Jobs 0 and 1 both need the 2-drive slot; only slot 1
            // qualifies, so job 0's claim must block job 1 *within the
            // cycle*. Job 2's weaker guard still fits slot 2.
            let bound = if i < 2 { 2 } else { 1 };
            ad.insert_expr(REQUIREMENTS, &format!("TARGET.TapeDrives >= {bound}"))
                .unwrap();
            queue.submit(JobId(i), ad, SimTime::ZERO).unwrap();
        }
        (queue, collector)
    };

    for path in [
        phishare_condor::MatchPath::Delta,
        phishare_condor::MatchPath::Full,
    ] {
        let (mut queue, mut collector) = build();
        let negotiator = Negotiator::default().with_path(path);
        let (matches, stats) = negotiator.negotiate_with_stats(&mut queue, &mut collector);
        assert_eq!(
            matches.iter().map(|m| (m.job, m.slot)).collect::<Vec<_>>(),
            vec![
                (JobId(0), SlotId { node: 1, slot: 1 }),
                (JobId(2), SlotId { node: 1, slot: 2 }),
            ],
            "{path:?}"
        );
        assert_eq!(stats.unmatched, 1, "{path:?}");
        assert_eq!(queue.pending(), vec![JobId(1)], "{path:?}");

        // The cycle registered the index; it answers range queries with
        // the claims applied, and in-place edits keep it coherent.
        let idx = collector
            .attr_index("tapedrives")
            .expect("registered by the cycle");
        assert_eq!(collector.indexed_range_at_least(idx, 2.0).count(), 0);
        collector.release(SlotId { node: 1, slot: 1 });
        collector.set_int_attr(SlotId { node: 1, slot: 1 }, "TapeDrives", 2);
        assert_eq!(
            collector
                .indexed_range_at_least(idx, 2.0)
                .collect::<Vec<_>>(),
            vec![SlotId { node: 1, slot: 1 }]
        );
        // And the freed slot satisfies the remaining job next cycle.
        let (matches, _) = negotiator.negotiate_with_stats(&mut queue, &mut collector);
        assert_eq!(
            matches.iter().map(|m| m.job).collect::<Vec<_>>(),
            vec![JobId(1)],
            "{path:?}"
        );
    }
}
