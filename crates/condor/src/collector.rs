//! The collector: the central manager's view of every slot.

use phishare_classad::ClassAd;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Identifies one execution slot: `slot<slot>@node<node>`.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct SlotId {
    /// Node index within the cluster.
    pub node: u32,
    /// Slot index within the node (1-based, Condor style).
    pub slot: u32,
}

impl SlotId {
    /// The Condor-style slot name, e.g. `slot1@node3`.
    pub fn name(&self) -> String {
        format!("slot{}@node{}", self.slot, self.node)
    }
}

impl fmt::Display for SlotId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "slot{}@node{}", self.slot, self.node)
    }
}

/// A slot's entry in the collector.
#[derive(Debug, Clone)]
pub struct SlotStatus {
    /// The slot's current ClassAd.
    pub ad: ClassAd,
    /// Whether a job currently holds a claim on the slot.
    pub claimed: bool,
}

/// The collector: slot name → latest advertisement.
#[derive(Debug, Default)]
pub struct Collector {
    slots: BTreeMap<SlotId, SlotStatus>,
}

impl Collector {
    /// Create an empty collector.
    pub fn new() -> Self {
        Collector::default()
    }

    /// Insert or refresh a slot's advertisement. Claim state is preserved on
    /// refresh.
    pub fn advertise(&mut self, slot: SlotId, ad: ClassAd) {
        match self.slots.get_mut(&slot) {
            Some(status) => status.ad = ad,
            None => {
                self.slots.insert(slot, SlotStatus { ad, claimed: false });
            }
        }
    }

    /// Look up a slot.
    pub fn get(&self, slot: SlotId) -> Option<&SlotStatus> {
        self.slots.get(&slot)
    }

    /// Mutable access to a slot's ad (for in-cycle resource decrements).
    pub fn ad_mut(&mut self, slot: SlotId) -> Option<&mut ClassAd> {
        self.slots.get_mut(&slot).map(|s| &mut s.ad)
    }

    /// Mark a slot claimed. Returns false if it was already claimed.
    pub fn claim(&mut self, slot: SlotId) -> bool {
        match self.slots.get_mut(&slot) {
            Some(s) if !s.claimed => {
                s.claimed = true;
                true
            }
            _ => false,
        }
    }

    /// Release a slot's claim.
    pub fn release(&mut self, slot: SlotId) {
        if let Some(s) = self.slots.get_mut(&slot) {
            s.claimed = false;
        }
    }

    /// All slots in deterministic (node, slot) order.
    pub fn slots(&self) -> impl Iterator<Item = (&SlotId, &SlotStatus)> {
        self.slots.iter()
    }

    /// Unclaimed slots in deterministic order.
    pub fn unclaimed(&self) -> Vec<SlotId> {
        self.slots
            .iter()
            .filter(|(_, s)| !s.claimed)
            .map(|(id, _)| *id)
            .collect()
    }

    /// Slots belonging to `node`.
    pub fn node_slots(&self, node: u32) -> Vec<SlotId> {
        self.slots
            .keys()
            .filter(|s| s.node == node)
            .copied()
            .collect()
    }

    /// Number of registered slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when no slots are registered.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn slot(n: u32, s: u32) -> SlotId {
        SlotId { node: n, slot: s }
    }

    #[test]
    fn slot_names_match_condor_convention() {
        assert_eq!(slot(3, 1).name(), "slot1@node3");
        assert_eq!(slot(3, 1).to_string(), "slot1@node3");
    }

    #[test]
    fn advertise_and_claim() {
        let mut c = Collector::new();
        c.advertise(slot(1, 1), ClassAd::new());
        c.advertise(slot(1, 2), ClassAd::new());
        assert_eq!(c.len(), 2);
        assert!(c.claim(slot(1, 1)));
        assert!(!c.claim(slot(1, 1))); // double claim fails
        assert_eq!(c.unclaimed(), vec![slot(1, 2)]);
        c.release(slot(1, 1));
        assert_eq!(c.unclaimed().len(), 2);
    }

    #[test]
    fn refresh_preserves_claim_state() {
        let mut c = Collector::new();
        c.advertise(slot(1, 1), ClassAd::new());
        c.claim(slot(1, 1));
        let mut ad = ClassAd::new();
        ad.insert("PhiFreeMemory", 4096u64);
        c.advertise(slot(1, 1), ad);
        assert!(c.get(slot(1, 1)).unwrap().claimed);
        assert!(c.get(slot(1, 1)).unwrap().ad.get("PhiFreeMemory").is_some());
    }

    #[test]
    fn node_slots_filters_by_node() {
        let mut c = Collector::new();
        for n in 1..=2 {
            for s in 1..=3 {
                c.advertise(slot(n, s), ClassAd::new());
            }
        }
        assert_eq!(c.node_slots(2), vec![slot(2, 1), slot(2, 2), slot(2, 3)]);
    }

    #[test]
    fn ordering_is_deterministic() {
        let mut c = Collector::new();
        c.advertise(slot(2, 1), ClassAd::new());
        c.advertise(slot(1, 2), ClassAd::new());
        c.advertise(slot(1, 1), ClassAd::new());
        let order: Vec<SlotId> = c.slots().map(|(id, _)| *id).collect();
        assert_eq!(order, vec![slot(1, 1), slot(1, 2), slot(2, 1)]);
    }
}
