//! The collector: the central manager's view of every slot.
//!
//! Besides the authoritative `SlotId → SlotStatus` map, the collector
//! maintains secondary indexes that the negotiator's fast path uses to
//! pre-screen candidates without walking every slot ad:
//!
//! * **name index** — advertised `Name` (lower-cased) → slot, for jobs
//!   pinned to a single slot;
//! * **machine index** — advertised `Machine` (lower-cased) → slots on that
//!   node, for jobs pinned to a node;
//! * **guard indexes** — one ordered index per *registered attribute*
//!   (see [`Collector::ensure_attr_index`]): unclaimed slots ordered by the
//!   attribute's advertised numeric value, so any compiled
//!   `TARGET.attr >= c` guard becomes a range query instead of a scan.
//!   `PhiFreeMemory` and `PhiDevicesFree` are pre-registered; the
//!   negotiator registers further attributes on demand from the guards it
//!   sees, up to a fixed cap.
//!
//! Indexes are over-approximate by design: a candidate pulled from an index
//! is always re-checked against the full match predicate, so the indexes
//! only need to never *miss* a true match. They are kept coherent by every
//! mutation (`advertise`, `claim`, `release`, `set_int_attr`) — same-cycle
//! resource decrements are visible to the next range query immediately.
//!
//! # Partitions
//!
//! Slot state is split across `P` partitions, assigned deterministically by
//! node id (`node % P`). Each partition owns its *own* slot map, guard
//! indexes, dirty set, and watermark, so the negotiator's delta cycles can
//! register, screen, and pre-commit per partition in parallel — partitions
//! never share mutable state. The global name and machine indexes stay
//! unpartitioned (they answer point queries, not scans), as does the
//! monotone sequence counter, which keeps dirty stamps totally ordered
//! *across* partitions. Every public accessor merges partitions back into
//! the exact enumeration order a single-map collector would produce, so
//! observable behaviour — including [`PartialEq`] — is partition-count
//! invariant. `P = 1` (the default) is the unpartitioned layout.
//!
//! # Dirty tracking
//!
//! The collector also stamps every *match-relevant* mutation with a
//! monotone sequence number ([`Collector::seq`]) and remembers, per slot,
//! the latest stamp ([`Collector::dirty_since`]). This is what the
//! negotiator's delta path builds on: a job certified unmatched against the
//! pool at sequence `s` can only have gained a match through a slot dirtied
//! *after* `s`, because the match predicate depends on nothing but the job
//! ad, the slot ad, and the claim flag. Two deliberate asymmetries keep the
//! set small and exact:
//!
//! * **claims do not mark dirty** — turning `claimed` on only ever removes
//!   a candidate (the negotiator filters claimed slots before the
//!   predicate), so it cannot turn an unmatched job matchable;
//! * **removals clear their entries** — [`Collector::invalidate_node`]
//!   deletes the slots' dirty stamps outright, since a vanished slot cannot
//!   create a match either (the partition watermark still advances, so
//!   post-fault cycles are never quiescence-skipped).
//!
//! Everything else — ad refreshes, in-cycle decrements, releases,
//! re-advertisements — marks the slot dirty, *including* decrements: the
//! predicate is arbitrary (a requirement may test `TARGET.attr < c` or hide
//! inverted logic in a residual expression), so no monotonicity is assumed.
//!
//! Each partition additionally tracks a **watermark**: the sequence number
//! of its latest dirtying mutation (including invalidations). A cycle is
//! provably match-free when every idle job holds an unmatched certificate
//! at least as new as [`Collector::max_watermark`] — the O(1) quiescence
//! check the negotiator and runtime build on.
//!
//! Equality ([`PartialEq`]) deliberately compares only the authoritative
//! state — each slot's ad and claim flag, in slot order. Which guard
//! indexes happen to be registered, how often the pool was mutated, and how
//! many partitions hold the slots are operational details that differ
//! between equivalent collectors (e.g. the delta and full negotiation
//! paths), not observable matchmaking state.

use crate::attrs;
use phishare_classad::{ClassAd, Value};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::iter::Peekable;
use std::ops::Bound;

/// Identifies one execution slot: `slot<slot>@node<node>`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SlotId {
    /// Node index within the cluster.
    pub node: u32,
    /// Slot index within the node (1-based, Condor style).
    pub slot: u32,
}

impl SlotId {
    /// The Condor-style slot name, e.g. `slot1@node3`.
    pub fn name(&self) -> String {
        format!("slot{}@node{}", self.slot, self.node)
    }

    /// The smallest possible slot id — the origin of index range scans.
    pub const MIN: SlotId = SlotId { node: 0, slot: 0 };
}

impl fmt::Display for SlotId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "slot{}@node{}", self.slot, self.node)
    }
}

/// Most guard indexes a collector will register. The negotiator registers
/// attributes lazily from job guards; a hostile mix of requirements must
/// not grow an index per distinct attribute name, so registration beyond
/// the cap is refused and those guards fall back to the unclaimed scan.
pub const MAX_ATTR_INDEXES: usize = 12;

/// Most partitions a collector will split into. Partitions beyond the host's
/// core count only add merge overhead, and a small fixed cap keeps the merge
/// iterators' per-item cost bounded.
pub const MAX_PARTITIONS: usize = 16;

/// Position of the pre-registered `PhiFreeMemory` guard index.
const FREE_MEM_IDX: usize = Collector::FREE_MEM_INDEX;

/// Parse a `PHISHARE_COLLECTOR_PARTITIONS`-style override. Non-numeric or
/// zero values are ignored; values above [`MAX_PARTITIONS`] are clamped.
pub fn partitions_override(raw: Option<&str>) -> Option<usize> {
    raw.and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .map(|n| n.min(MAX_PARTITIONS))
}

/// Partition count used when the configuration does not pin one: the
/// `PHISHARE_COLLECTOR_PARTITIONS` environment override, else 1 (the
/// unpartitioned layout).
pub fn default_partitions() -> usize {
    partitions_override(
        std::env::var("PHISHARE_COLLECTOR_PARTITIONS")
            .ok()
            .as_deref(),
    )
    .unwrap_or(1)
}

/// Parse a `PHISHARE_PARTITION_THREADS`-style override for the number of
/// worker threads partition-parallel phases may use.
pub(crate) fn partition_threads_override(raw: Option<&str>, parts: usize) -> usize {
    raw.and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
        .min(parts)
}

/// Worker threads partition-parallel phases should use: one per partition,
/// capped at the host's parallelism (overridable via
/// `PHISHARE_PARTITION_THREADS`, mostly so tests can force the threaded
/// path on single-core machines). A result of 1 means "stay serial".
/// Public so benches can record the fan-out they actually measured.
pub fn partition_threads(parts: usize) -> usize {
    partition_threads_override(
        std::env::var("PHISHARE_PARTITION_THREADS").ok().as_deref(),
        parts,
    )
}

/// Frequently-consulted facts extracted from a slot ad once per
/// advertisement, so the matchmaking inner loop never does attribute map
/// lookups (each of which lower-cases the key) for them.
#[derive(Debug, Clone, Default)]
pub struct SlotMeta {
    /// Advertised `Name`, lower-cased; `None` when absent or non-string.
    name_lc: Option<String>,
    /// Advertised `Machine`, lower-cased; `None` when absent or non-string.
    machine_lc: Option<String>,
    /// The slot's numeric value for each registered guard attribute,
    /// parallel to the collector's registration order; `None` when absent
    /// or non-numeric.
    indexed_vals: Vec<Option<f64>>,
    /// Whether the slot ad carries a machine-side `Requirements` expression
    /// (most machine ads do not, letting the negotiator skip that half of
    /// the two-sided match entirely).
    has_requirements: bool,
}

impl SlotMeta {
    fn from_ad(ad: &ClassAd, indexed_attrs: &[String]) -> Self {
        let str_attr = |name: &str| match ad.get(name) {
            Some(Value::Str(s)) => Some(s.to_ascii_lowercase()),
            _ => None,
        };
        SlotMeta {
            name_lc: str_attr(attrs::lc::NAME),
            machine_lc: str_attr(attrs::lc::MACHINE),
            indexed_vals: indexed_attrs.iter().map(|a| numeric_attr(ad, a)).collect(),
            has_requirements: ad.get_expr(attrs::lc::REQUIREMENTS).is_some(),
        }
    }

    /// Whether the slot advertises a machine-side `Requirements`.
    pub fn has_requirements(&self) -> bool {
        self.has_requirements
    }

    /// The slot's advertised free Phi memory, if numeric.
    pub fn free_phi_mem(&self) -> Option<f64> {
        self.indexed_vals.get(FREE_MEM_IDX).copied().flatten()
    }

    /// The slot's numeric value for registered guard attribute `idx`, if
    /// present and numeric. Exact for guard pre-screens: a numeric guard
    /// rejects every slot whose attribute is absent or non-numeric.
    pub fn indexed_val(&self, idx: usize) -> Option<f64> {
        self.indexed_vals.get(idx).copied().flatten()
    }
}

fn numeric_attr(ad: &ClassAd, attr: &str) -> Option<f64> {
    ad.get(attr).and_then(Value::as_f64).filter(|v| !v.is_nan())
}

/// A slot's entry in the collector.
#[derive(Debug, Clone)]
pub struct SlotStatus {
    /// The slot's current ClassAd.
    pub ad: ClassAd,
    /// Whether a job currently holds a claim on the slot.
    pub claimed: bool,
    meta: SlotMeta,
}

impl SlotStatus {
    /// Cached facts about the slot ad.
    pub fn meta(&self) -> &SlotMeta {
        &self.meta
    }
}

/// Equality is the authoritative state only: the ad and the claim flag.
/// The cached meta derives from the ad *plus* whichever guard attributes
/// the owning collector has registered, so two observably identical slots
/// may carry different-length `indexed_vals`.
impl PartialEq for SlotStatus {
    fn eq(&self, other: &Self) -> bool {
        self.ad == other.ad && self.claimed == other.claimed
    }
}

/// Order-preserving encoding of a non-NaN f64 into u64, so numeric bounds
/// can key a `BTreeSet`.
fn ord_f64(x: f64) -> u64 {
    let bits = x.to_bits();
    if bits & (1 << 63) != 0 {
        !bits
    } else {
        bits | (1 << 63)
    }
}

/// K-way ordered merge over per-partition iterators, keyed by `key`. The
/// single-partition case bypasses the merge entirely so `P = 1` pays
/// nothing over the unpartitioned layout; the multi-partition case scans
/// the (≤ [`MAX_PARTITIONS`]) heads per item, which beats a heap at these
/// widths.
enum Merged<I: Iterator, F> {
    One(I),
    Many(Vec<Peekable<I>>, F),
}

impl<I, K, F> Iterator for Merged<I, F>
where
    I: Iterator,
    K: Ord,
    F: Fn(&I::Item) -> K,
{
    type Item = I::Item;

    fn next(&mut self) -> Option<I::Item> {
        match self {
            Merged::One(it) => it.next(),
            Merged::Many(heads, key) => {
                let mut best: Option<(K, usize)> = None;
                for (i, head) in heads.iter_mut().enumerate() {
                    if let Some(item) = head.peek() {
                        let k = key(item);
                        if best.as_ref().is_none_or(|(bk, _)| k < *bk) {
                            best = Some((k, i));
                        }
                    }
                }
                best.map(|(_, i)| heads[i].next().expect("peeked head is non-empty"))
            }
        }
    }
}

/// One shard of the collector's slot state. Partitions are fully disjoint —
/// a slot lives in exactly one (by node id), and every mutable field here is
/// touched only through its owning partition — which is what lets delta
/// cycles work partitions in parallel without synchronization.
#[derive(Debug, Clone, Default)]
struct Partition {
    slots: BTreeMap<SlotId, SlotStatus>,
    /// One ordered index per registered attribute: unclaimed slots keyed by
    /// the attribute's advertised numeric value (ord-encoded). Parallel to
    /// the collector-wide `indexed_attrs` registration order.
    by_attr: Vec<BTreeSet<(u64, SlotId)>>,
    /// Per-slot latest dirty stamp.
    stamp: BTreeMap<SlotId, u64>,
    /// stamp → slot, deduplicated: each slot appears once, at its latest
    /// stamp, so `|dirty| <= |slots|` and no garbage collection is needed.
    dirty: BTreeMap<u64, SlotId>,
    /// Sequence number of this partition's latest dirtying mutation
    /// (including node invalidations, which leave no dirty entry). Zero
    /// until something dirties the partition.
    watermark: u64,
}

impl Partition {
    fn unindex_attrs(&mut self, slot: SlotId, status: &SlotStatus) {
        for (i, val) in status.meta.indexed_vals.iter().enumerate() {
            if let Some(v) = val {
                self.by_attr[i].remove(&(ord_f64(*v), slot));
            }
        }
    }

    fn index_attrs(&mut self, slot: SlotId, status: &SlotStatus) {
        if !status.claimed {
            for (i, val) in status.meta.indexed_vals.iter().enumerate() {
                if let Some(v) = val {
                    self.by_attr[i].insert((ord_f64(*v), slot));
                }
            }
        }
    }

    /// Extend this partition with the index for a newly registered
    /// attribute: every slot's meta gains the attribute's value, and the
    /// unclaimed numeric ones enter the new ordered index.
    fn register_attr(&mut self, canon: &str) {
        let mut index = BTreeSet::new();
        for (id, status) in self.slots.iter_mut() {
            let val = numeric_attr(&status.ad, canon);
            status.meta.indexed_vals.push(val);
            if !status.claimed {
                if let Some(v) = val {
                    index.insert((ord_f64(v), *id));
                }
            }
        }
        self.by_attr.push(index);
    }
}

/// The collector: slot name → latest advertisement, plus matchmaking
/// indexes, dirty tracking and partitions (see module docs).
#[derive(Debug, Clone)]
pub struct Collector {
    /// Disjoint slot shards; a slot with node `n` lives in
    /// `parts[n % parts.len()]`. Never empty.
    parts: Vec<Partition>,
    /// Advertised `Name` (lower-cased) → slot.
    by_name: BTreeMap<String, SlotId>,
    /// Advertised `Machine` (lower-cased) → slots, in SlotId order.
    by_machine: BTreeMap<String, Vec<SlotId>>,
    /// Registered guard-index attributes, lower-cased; position is the
    /// index id used by [`Collector::indexed_range_at_least`]. Shared by
    /// all partitions, so index ids mean the same thing everywhere.
    indexed_attrs: Vec<String>,
    /// Monotone mutation sequence; bumped by every match-relevant change.
    /// Global across partitions, so dirty stamps are totally ordered.
    seq: u64,
}

/// Equality is the authoritative state only — per-slot ads and claims, in
/// slot order. See the module docs for why registered indexes, sequence
/// counters and partition counts are excluded.
impl PartialEq for Collector {
    fn eq(&self, other: &Self) -> bool {
        self.len() == other.len() && self.slots().eq(other.slots())
    }
}

impl Default for Collector {
    fn default() -> Self {
        Collector::new()
    }
}

impl Collector {
    /// Position of the pre-registered `PhiFreeMemory` guard index.
    pub const FREE_MEM_INDEX: usize = 0;
    /// Position of the pre-registered `PhiDevicesFree` guard index.
    pub const DEVICES_FREE_INDEX: usize = 1;

    /// Create an empty unpartitioned collector (`P = 1`) with the two
    /// standard Phi guard indexes pre-registered.
    pub fn new() -> Self {
        Collector::with_partitions(1)
    }

    /// Create an empty collector with `parts` partitions (clamped to
    /// `1..=`[`MAX_PARTITIONS`]) and the two standard Phi guard indexes
    /// pre-registered.
    pub fn with_partitions(parts: usize) -> Self {
        let parts = parts.clamp(1, MAX_PARTITIONS);
        let mut c = Collector {
            parts: vec![Partition::default(); parts],
            by_name: BTreeMap::new(),
            by_machine: BTreeMap::new(),
            indexed_attrs: Vec::new(),
            seq: 0,
        };
        let fm = c.ensure_attr_index(attrs::lc::PHI_FREE_MEMORY);
        debug_assert_eq!(fm, Some(Self::FREE_MEM_INDEX));
        let df = c.ensure_attr_index(attrs::lc::PHI_DEVICES_FREE);
        debug_assert_eq!(df, Some(Self::DEVICES_FREE_INDEX));
        c
    }

    /// How many partitions the slot state is split across.
    pub fn partitions(&self) -> usize {
        self.parts.len()
    }

    /// The partition that owns slots of `node`.
    pub fn part_of(&self, node: u32) -> usize {
        node as usize % self.parts.len()
    }

    /// Stamp `slot` as changed at a fresh sequence number.
    fn mark_dirty(&mut self, slot: SlotId) {
        self.seq += 1;
        let seq = self.seq;
        let pi = self.part_of(slot.node);
        let part = &mut self.parts[pi];
        if let Some(old) = part.stamp.insert(slot, seq) {
            part.dirty.remove(&old);
        }
        part.dirty.insert(seq, slot);
        part.watermark = seq;
    }

    /// The current mutation sequence number. A later call never returns a
    /// smaller value; every match-relevant mutation strictly increases it.
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// The newest watermark across all partitions: the sequence number of
    /// the latest dirtying mutation anywhere in the pool. A job certified
    /// unmatched at sequence `s >= max_watermark()` provably still has no
    /// match — the O(1) quiescence predicate.
    pub fn max_watermark(&self) -> u64 {
        self.parts.iter().map(|p| p.watermark).max().unwrap_or(0)
    }

    /// Slots dirtied strictly after `seq`, in stamp order, across all
    /// partitions. Together with the claim-flag check this is exactly the
    /// candidate set a job certified unmatched at `seq` needs to re-examine
    /// (module docs).
    pub fn dirty_since(&self, seq: u64) -> impl Iterator<Item = SlotId> + '_ {
        let mut ranges = self
            .parts
            .iter()
            .map(|p| {
                p.dirty
                    .range((Bound::Excluded(seq), Bound::Unbounded))
                    .map(|(s, slot)| (*s, *slot))
            })
            .collect::<Vec<_>>();
        let merged = if ranges.len() == 1 {
            Merged::One(ranges.pop().expect("one range"))
        } else {
            Merged::Many(
                ranges.into_iter().map(Iterator::peekable).collect(),
                |item: &(u64, SlotId)| item.0,
            )
        };
        merged.map(|(_, slot)| slot)
    }

    /// [`Collector::dirty_since`] restricted to partition `pi` — the
    /// partition-parallel screen's shard of a certified job's candidates.
    pub fn partition_dirty_since(&self, pi: usize, seq: u64) -> impl Iterator<Item = SlotId> + '_ {
        self.parts[pi]
            .dirty
            .range((Bound::Excluded(seq), Bound::Unbounded))
            .map(|(_, slot)| *slot)
    }

    /// [`Collector::partition_dirty_since`] with stamps. The partitioned
    /// screen hoists this into one per-cycle cache per partition and slices
    /// it per job by certificate with a binary search, instead of
    /// re-walking the dirty map once per (job, partition) pair.
    pub fn partition_dirty_entries_since(
        &self,
        pi: usize,
        seq: u64,
    ) -> impl Iterator<Item = (u64, SlotId)> + '_ {
        self.parts[pi]
            .dirty
            .range((Bound::Excluded(seq), Bound::Unbounded))
            .map(|(s, slot)| (*s, *slot))
    }

    /// Whether `slot` was dirtied strictly after `seq`.
    pub fn dirtied_after(&self, slot: SlotId, seq: u64) -> bool {
        self.parts[slot.node as usize % self.parts.len()]
            .stamp
            .get(&slot)
            .is_some_and(|&s| s > seq)
    }

    /// The guard-index position of `attr`, if registered.
    pub fn attr_index(&self, attr: &str) -> Option<usize> {
        self.indexed_attrs
            .iter()
            .position(|a| attr.eq_ignore_ascii_case(a))
    }

    /// Register a guard index over `attr` (idempotent), returning its
    /// position — or `None` when the [`MAX_ATTR_INDEXES`] cap is reached.
    /// Registration walks every slot once (partitions in parallel when the
    /// host has the cores for it); steady state is a lookup.
    ///
    /// An attribute no slot advertises yields an *empty* index, which is
    /// still exact as a pre-screen: a numeric guard rejects every slot
    /// missing the attribute, so the guard's true matches are empty too.
    pub fn ensure_attr_index(&mut self, attr: &str) -> Option<usize> {
        if let Some(idx) = self.attr_index(attr) {
            return Some(idx);
        }
        if self.indexed_attrs.len() >= MAX_ATTR_INDEXES {
            return None;
        }
        let canon = attr.to_ascii_lowercase();
        if self.parts.len() > 1 && partition_threads(self.parts.len()) > 1 {
            std::thread::scope(|scope| {
                for part in self.parts.iter_mut() {
                    let canon = canon.as_str();
                    scope.spawn(move || part.register_attr(canon));
                }
            });
        } else {
            for part in self.parts.iter_mut() {
                part.register_attr(&canon);
            }
        }
        self.indexed_attrs.push(canon);
        Some(self.indexed_attrs.len() - 1)
    }

    fn unindex(&mut self, slot: SlotId, status: &SlotStatus) {
        if let Some(name) = &status.meta.name_lc {
            self.by_name.remove(name);
        }
        if let Some(machine) = &status.meta.machine_lc {
            if let Some(ids) = self.by_machine.get_mut(machine) {
                ids.retain(|s| *s != slot);
                if ids.is_empty() {
                    self.by_machine.remove(machine);
                }
            }
        }
        let pi = self.part_of(slot.node);
        self.parts[pi].unindex_attrs(slot, status);
    }

    fn index(&mut self, slot: SlotId, status: &SlotStatus) {
        if let Some(name) = &status.meta.name_lc {
            self.by_name.insert(name.clone(), slot);
        }
        if let Some(machine) = &status.meta.machine_lc {
            let ids = self.by_machine.entry(machine.clone()).or_default();
            let pos = ids.partition_point(|s| *s < slot);
            if ids.get(pos) != Some(&slot) {
                ids.insert(pos, slot);
            }
        }
        let pi = self.part_of(slot.node);
        self.parts[pi].index_attrs(slot, status);
    }

    /// Insert or refresh a slot's advertisement. Claim state is preserved on
    /// refresh, all indexes are rebuilt for the slot, and the slot is marked
    /// dirty.
    pub fn advertise(&mut self, slot: SlotId, ad: ClassAd) {
        let pi = self.part_of(slot.node);
        let claimed = match self.parts[pi].slots.remove(&slot) {
            Some(old) => {
                self.unindex(slot, &old);
                old.claimed
            }
            None => false,
        };
        let status = SlotStatus {
            meta: SlotMeta::from_ad(&ad, &self.indexed_attrs),
            ad,
            claimed,
        };
        self.index(slot, &status);
        self.parts[pi].slots.insert(slot, status);
        self.mark_dirty(slot);
    }

    /// Look up a slot.
    pub fn get(&self, slot: SlotId) -> Option<&SlotStatus> {
        self.parts[slot.node as usize % self.parts.len()]
            .slots
            .get(&slot)
    }

    /// Overwrite one integer attribute of a slot's ad (the negotiator's
    /// in-cycle resource decrements), keeping the cached meta and every
    /// guard index coherent and marking the slot dirty. Writes that change
    /// nothing are skipped entirely — the slot stays clean.
    pub fn set_int_attr(&mut self, slot: SlotId, attr: &str, value: i64) {
        let idx = self.attr_index(attr);
        self.set_int_attr_inner(slot, attr, idx, value);
    }

    /// [`Collector::set_int_attr`] for an attribute whose guard-index
    /// position is already known (e.g. [`Collector::FREE_MEM_INDEX`]) —
    /// the commit path's hoisted handle, skipping the per-write scan of
    /// the registered-attribute table.
    pub fn set_int_attr_at(&mut self, slot: SlotId, idx: usize, attr: &str, value: i64) {
        debug_assert_eq!(
            self.attr_index(attr),
            Some(idx),
            "hoisted attr handle out of date"
        );
        self.set_int_attr_inner(slot, attr, Some(idx), value);
    }

    fn set_int_attr_inner(&mut self, slot: SlotId, attr: &str, idx: Option<usize>, value: i64) {
        let pi = self.part_of(slot.node);
        let part = &mut self.parts[pi];
        let Some(status) = part.slots.get_mut(&slot) else {
            return;
        };
        if status.ad.get(attr) == Some(&Value::Int(value)) {
            return;
        }
        status.ad.insert(attr, value);
        if let Some(i) = idx {
            let old = status.meta.indexed_vals[i];
            let new = value as f64;
            status.meta.indexed_vals[i] = Some(new);
            if !status.claimed {
                if let Some(v) = old {
                    part.by_attr[i].remove(&(ord_f64(v), slot));
                }
                part.by_attr[i].insert((ord_f64(new), slot));
            }
        }
        self.mark_dirty(slot);
    }

    /// Refresh the node-level Phi availability attributes of an existing
    /// slot ad in place (`PhiFreeMemory`, `PhiDevicesFree`). Equivalent to
    /// re-advertising the same machine ad with new availability numbers,
    /// but skips rebuilding the ad's fixed attributes — and skips the
    /// write (and the dirty mark) entirely for values that already match.
    /// Returns `false` when the slot has never been advertised (the caller
    /// must publish a full ad first).
    pub fn refresh_phi_availability(
        &mut self,
        slot: SlotId,
        free_mem_mb: u64,
        devices_free: u32,
    ) -> bool {
        if self.get(slot).is_none() {
            return false;
        }
        self.set_int_attr_at(
            slot,
            Self::FREE_MEM_INDEX,
            attrs::lc::PHI_FREE_MEMORY,
            free_mem_mb as i64,
        );
        self.set_int_attr_at(
            slot,
            Self::DEVICES_FREE_INDEX,
            attrs::lc::PHI_DEVICES_FREE,
            devices_free as i64,
        );
        true
    }

    /// Mark a slot claimed. Returns false if it was already claimed.
    ///
    /// Claiming removes the slot from every guard index but does *not*
    /// mark it dirty: a claim can only remove a candidate, never create a
    /// match (module docs), and keeping claims out of the dirty set is what
    /// makes the delta path's per-cycle candidate sets small.
    pub fn claim(&mut self, slot: SlotId) -> bool {
        let pi = self.part_of(slot.node);
        let part = &mut self.parts[pi];
        match part.slots.get_mut(&slot) {
            Some(s) if !s.claimed => {
                s.claimed = true;
                for (i, val) in s.meta.indexed_vals.iter().enumerate() {
                    if let Some(v) = val {
                        part.by_attr[i].remove(&(ord_f64(*v), slot));
                    }
                }
                true
            }
            _ => false,
        }
    }

    /// Release a slot's claim, re-inserting it into the guard indexes and
    /// marking it dirty (an unclaimed slot is new matching capacity).
    pub fn release(&mut self, slot: SlotId) {
        let pi = self.part_of(slot.node);
        let part = &mut self.parts[pi];
        let Some(s) = part.slots.get_mut(&slot) else {
            return;
        };
        if !s.claimed {
            return;
        }
        s.claimed = false;
        for (i, val) in s.meta.indexed_vals.iter().enumerate() {
            if let Some(v) = val {
                part.by_attr[i].insert((ord_f64(*v), slot));
            }
        }
        self.mark_dirty(slot);
    }

    /// All slots in deterministic (node, slot) order, merged across
    /// partitions.
    pub fn slots(&self) -> impl Iterator<Item = (&SlotId, &SlotStatus)> {
        let mut iters = self
            .parts
            .iter()
            .map(|p| p.slots.iter())
            .collect::<Vec<_>>();
        if iters.len() == 1 {
            Merged::One(iters.pop().expect("one partition"))
        } else {
            Merged::Many(
                iters.into_iter().map(Iterator::peekable).collect(),
                |item: &(&SlotId, &SlotStatus)| *item.0,
            )
        }
    }

    /// Unclaimed slots in deterministic order.
    pub fn unclaimed(&self) -> Vec<SlotId> {
        self.unclaimed_iter().collect()
    }

    /// [`Collector::unclaimed`] without the allocation.
    pub fn unclaimed_iter(&self) -> impl Iterator<Item = SlotId> + '_ {
        self.slots().filter(|(_, s)| !s.claimed).map(|(id, _)| *id)
    }

    /// Unclaimed slots owned by partition `pi`, in slot order — the
    /// partition-parallel screen's shard of a full scan.
    pub fn partition_unclaimed_iter(&self, pi: usize) -> impl Iterator<Item = SlotId> + '_ {
        self.parts[pi]
            .slots
            .iter()
            .filter(|(_, s)| !s.claimed)
            .map(|(id, _)| *id)
    }

    /// The slot advertising `Name == name` (case-insensitive), if any.
    pub fn slot_by_name(&self, name: &str) -> Option<SlotId> {
        self.by_name.get(&name.to_ascii_lowercase()).copied()
    }

    /// Slots advertising `Machine == machine` (case-insensitive), in
    /// SlotId order.
    pub fn slots_on_machine(&self, machine: &str) -> &[SlotId] {
        self.by_machine
            .get(&machine.to_ascii_lowercase())
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Unclaimed slots whose registered attribute `idx` is numeric and
    /// `>= bound`, in ascending value order, merged across partitions.
    /// Slots without a numeric value for the attribute are absent — exactly
    /// the slots a numeric guard would reject anyway.
    pub fn indexed_range_at_least(
        &self,
        idx: usize,
        bound: f64,
    ) -> impl Iterator<Item = SlotId> + '_ {
        let start = Bound::Included((ord_f64(bound), SlotId::MIN));
        let mut ranges = self
            .parts
            .iter()
            .map(|p| p.by_attr[idx].range((start, Bound::Unbounded)).copied())
            .collect::<Vec<_>>();
        let merged = if ranges.len() == 1 {
            Merged::One(ranges.pop().expect("one range"))
        } else {
            Merged::Many(
                ranges.into_iter().map(Iterator::peekable).collect(),
                |item: &(u64, SlotId)| *item,
            )
        };
        merged.map(|(_, slot)| slot)
    }

    /// [`Collector::indexed_range_at_least`] restricted to partition `pi`.
    pub fn partition_indexed_range_at_least(
        &self,
        pi: usize,
        idx: usize,
        bound: f64,
    ) -> impl Iterator<Item = SlotId> + '_ {
        let start = Bound::Included((ord_f64(bound), SlotId::MIN));
        self.parts[pi].by_attr[idx]
            .range((start, Bound::Unbounded))
            .map(|(_, slot)| *slot)
    }

    /// [`Collector::indexed_range_at_least`] over the pre-registered
    /// `PhiFreeMemory` index.
    pub fn unclaimed_with_free_mem_at_least(
        &self,
        bound: f64,
    ) -> impl Iterator<Item = SlotId> + '_ {
        self.indexed_range_at_least(FREE_MEM_IDX, bound)
    }

    /// Invalidate every ClassAd `node` has ever advertised (`condor_off`
    /// semantics / ad expiry after a missed update deadline): the slots —
    /// claimed or not — vanish from the collector, all its indexes, and the
    /// dirty set (a removed slot cannot create a match), so a dead startd
    /// stops matching immediately. The owning partition's watermark still
    /// advances — conservatively, so a cycle right after a fault is never
    /// quiescence-skipped. Returns how many slots were dropped. A later
    /// [`Startd::advertise`](crate::Startd) re-registers the node from
    /// scratch.
    pub fn invalidate_node(&mut self, node: u32) -> usize {
        let ids = self.node_slots(node);
        let pi = self.part_of(node);
        for slot in &ids {
            if let Some(status) = self.parts[pi].slots.remove(slot) {
                self.unindex(*slot, &status);
            }
            let part = &mut self.parts[pi];
            if let Some(stamp) = part.stamp.remove(slot) {
                part.dirty.remove(&stamp);
            }
        }
        if !ids.is_empty() {
            self.seq += 1;
            self.parts[pi].watermark = self.seq;
        }
        ids.len()
    }

    /// Slots belonging to `node`.
    pub fn node_slots(&self, node: u32) -> Vec<SlotId> {
        self.parts[self.part_of(node)]
            .slots
            .range(SlotId { node, slot: 0 }..)
            .take_while(|(id, _)| id.node == node)
            .map(|(id, _)| *id)
            .collect()
    }

    /// Number of registered slots.
    pub fn len(&self) -> usize {
        self.parts.iter().map(|p| p.slots.len()).sum()
    }

    /// True when no slots are registered.
    pub fn is_empty(&self) -> bool {
        self.parts.iter().all(|p| p.slots.is_empty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn slot(n: u32, s: u32) -> SlotId {
        SlotId { node: n, slot: s }
    }

    fn slot_ad(id: SlotId, free_mem: i64) -> ClassAd {
        let mut ad = ClassAd::new();
        ad.insert(attrs::NAME, id.name());
        ad.insert(attrs::MACHINE, format!("node{}", id.node));
        ad.insert(attrs::PHI_FREE_MEMORY, free_mem);
        ad
    }

    #[test]
    fn slot_names_match_condor_convention() {
        assert_eq!(slot(3, 1).name(), "slot1@node3");
        assert_eq!(slot(3, 1).to_string(), "slot1@node3");
    }

    #[test]
    fn advertise_and_claim() {
        let mut c = Collector::new();
        c.advertise(slot(1, 1), ClassAd::new());
        c.advertise(slot(1, 2), ClassAd::new());
        assert_eq!(c.len(), 2);
        assert!(c.claim(slot(1, 1)));
        assert!(!c.claim(slot(1, 1))); // double claim fails
        assert_eq!(c.unclaimed(), vec![slot(1, 2)]);
        c.release(slot(1, 1));
        assert_eq!(c.unclaimed().len(), 2);
    }

    #[test]
    fn refresh_preserves_claim_state() {
        let mut c = Collector::new();
        c.advertise(slot(1, 1), ClassAd::new());
        c.claim(slot(1, 1));
        let mut ad = ClassAd::new();
        ad.insert("PhiFreeMemory", 4096u64);
        c.advertise(slot(1, 1), ad);
        assert!(c.get(slot(1, 1)).unwrap().claimed);
        assert!(c.get(slot(1, 1)).unwrap().ad.get("PhiFreeMemory").is_some());
    }

    #[test]
    fn node_slots_filters_by_node() {
        let mut c = Collector::new();
        for n in 1..=2 {
            for s in 1..=3 {
                c.advertise(slot(n, s), ClassAd::new());
            }
        }
        assert_eq!(c.node_slots(2), vec![slot(2, 1), slot(2, 2), slot(2, 3)]);
    }

    #[test]
    fn invalidate_node_drops_slots_and_indexes() {
        let mut c = Collector::new();
        for n in 1..=2 {
            for s in 1..=2 {
                c.advertise(slot(n, s), slot_ad(slot(n, s), 4096));
            }
        }
        c.claim(slot(1, 1)); // claimed slots vanish too
        assert_eq!(c.invalidate_node(1), 2);
        assert!(c.node_slots(1).is_empty());
        assert_eq!(c.len(), 2);
        // Every index forgot the node: name, machine, and free-memory scans
        // only see the survivor.
        assert_eq!(c.slot_by_name("slot1@node1"), None);
        assert!(c.slots_on_machine("node1").is_empty());
        assert!(c.unclaimed_with_free_mem_at_least(0.0).all(|s| s.node == 2));
        // Idempotent, and releasing a vanished claim is a no-op.
        assert_eq!(c.invalidate_node(1), 0);
        c.release(slot(1, 1));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn ordering_is_deterministic() {
        let mut c = Collector::new();
        c.advertise(slot(2, 1), ClassAd::new());
        c.advertise(slot(1, 2), ClassAd::new());
        c.advertise(slot(1, 1), ClassAd::new());
        let order: Vec<SlotId> = c.slots().map(|(id, _)| *id).collect();
        assert_eq!(order, vec![slot(1, 1), slot(1, 2), slot(2, 1)]);
    }

    #[test]
    fn name_index_finds_slots_case_insensitively() {
        let mut c = Collector::new();
        c.advertise(slot(3, 2), slot_ad(slot(3, 2), 7680));
        assert_eq!(c.slot_by_name("SLOT2@NODE3"), Some(slot(3, 2)));
        assert_eq!(c.slot_by_name("slot9@node9"), None);
    }

    #[test]
    fn machine_index_lists_node_slots_in_order() {
        let mut c = Collector::new();
        for s in [2, 1, 3] {
            c.advertise(slot(4, s), slot_ad(slot(4, s), 1000));
        }
        assert_eq!(
            c.slots_on_machine("Node4"),
            &[slot(4, 1), slot(4, 2), slot(4, 3)]
        );
        assert!(c.slots_on_machine("node9").is_empty());
    }

    #[test]
    fn free_mem_index_answers_range_queries() {
        let mut c = Collector::new();
        c.advertise(slot(1, 1), slot_ad(slot(1, 1), 512));
        c.advertise(slot(1, 2), slot_ad(slot(1, 2), 3000));
        c.advertise(slot(2, 1), slot_ad(slot(2, 1), 7680));
        // A slot without numeric free memory never appears in the index.
        c.advertise(slot(2, 2), ClassAd::new());

        let at_least = |b: f64| -> Vec<SlotId> { c.unclaimed_with_free_mem_at_least(b).collect() };
        assert_eq!(at_least(0.0).len(), 3);
        assert_eq!(at_least(1000.0), vec![slot(1, 2), slot(2, 1)]);
        assert_eq!(at_least(3000.0), vec![slot(1, 2), slot(2, 1)]); // inclusive
        assert_eq!(at_least(8000.0), Vec::<SlotId>::new());
    }

    #[test]
    fn claim_and_release_maintain_free_mem_index() {
        let mut c = Collector::new();
        c.advertise(slot(1, 1), slot_ad(slot(1, 1), 7680));
        c.claim(slot(1, 1));
        assert_eq!(c.unclaimed_with_free_mem_at_least(0.0).count(), 0);
        c.release(slot(1, 1));
        assert_eq!(c.unclaimed_with_free_mem_at_least(0.0).count(), 1);
    }

    #[test]
    fn set_int_attr_updates_ad_meta_and_index() {
        let mut c = Collector::new();
        c.advertise(slot(1, 1), slot_ad(slot(1, 1), 7680));
        c.set_int_attr(slot(1, 1), attrs::PHI_FREE_MEMORY, 4000);
        assert_eq!(
            c.get(slot(1, 1)).unwrap().ad.get(attrs::PHI_FREE_MEMORY),
            Some(&phishare_classad::Value::Int(4000))
        );
        assert_eq!(
            c.get(slot(1, 1)).unwrap().meta().free_phi_mem(),
            Some(4000.0)
        );
        assert_eq!(c.unclaimed_with_free_mem_at_least(5000.0).count(), 0);
        assert_eq!(
            c.unclaimed_with_free_mem_at_least(4000.0)
                .collect::<Vec<_>>(),
            vec![slot(1, 1)]
        );
        // Attributes without a registered index leave it untouched.
        c.set_int_attr(slot(1, 1), "SomeOtherAttr", 1);
        assert_eq!(c.unclaimed_with_free_mem_at_least(4000.0).count(), 1);
    }

    #[test]
    fn re_advertise_rebuilds_indexes() {
        let mut c = Collector::new();
        c.advertise(slot(1, 1), slot_ad(slot(1, 1), 512));
        // Refresh with different name and more memory.
        let mut ad = ClassAd::new();
        ad.insert(attrs::NAME, "renamed@node1");
        ad.insert(attrs::PHI_FREE_MEMORY, 6000i64);
        c.advertise(slot(1, 1), ad);
        assert_eq!(c.slot_by_name("slot1@node1"), None);
        assert_eq!(c.slot_by_name("renamed@node1"), Some(slot(1, 1)));
        assert_eq!(
            c.unclaimed_with_free_mem_at_least(1000.0)
                .collect::<Vec<_>>(),
            vec![slot(1, 1)]
        );
    }

    #[test]
    fn generic_guard_indexes_register_and_answer_range_queries() {
        let mut c = Collector::new();
        for (i, gpus) in [(1, 0i64), (2, 2), (3, 4)] {
            let mut ad = slot_ad(slot(i, 1), 1000);
            ad.insert("GpuCount", gpus);
            c.advertise(slot(i, 1), ad);
        }
        // Registration after the fact walks existing slots.
        let idx = c.ensure_attr_index("GpuCount").unwrap();
        assert_eq!(c.attr_index("gpucount"), Some(idx));
        // Idempotent.
        assert_eq!(c.ensure_attr_index("GPUCOUNT"), Some(idx));
        let at_least =
            |c: &Collector, b: f64| -> Vec<SlotId> { c.indexed_range_at_least(idx, b).collect() };
        assert_eq!(at_least(&c, 1.0), vec![slot(2, 1), slot(3, 1)]);

        // Claims, releases, decrements, and re-advertisements all maintain
        // the registered index.
        c.claim(slot(3, 1));
        assert_eq!(at_least(&c, 1.0), vec![slot(2, 1)]);
        c.release(slot(3, 1));
        c.set_int_attr(slot(3, 1), "gpucount", 1);
        assert_eq!(at_least(&c, 2.0), vec![slot(2, 1)]);
        c.advertise(slot(2, 1), slot_ad(slot(2, 1), 1000)); // drops GpuCount
        assert_eq!(at_least(&c, 0.0), vec![slot(1, 1), slot(3, 1)]);
    }

    #[test]
    fn absent_attribute_yields_an_empty_index() {
        let mut c = Collector::new();
        c.advertise(slot(1, 1), slot_ad(slot(1, 1), 1000));
        let idx = c.ensure_attr_index("NoSuchAttribute").unwrap();
        assert_eq!(c.indexed_range_at_least(idx, f64::MIN).count(), 0);
    }

    #[test]
    fn index_registration_is_capped() {
        let mut c = Collector::new();
        let mut registered = 2; // the two pre-registered Phi indexes
        for i in 0.. {
            match c.ensure_attr_index(&format!("attr{i}")) {
                Some(_) => registered += 1,
                None => break,
            }
        }
        assert_eq!(registered, MAX_ATTR_INDEXES);
        // Refused attributes stay unregistered; known ones still resolve.
        assert_eq!(c.attr_index("attr999"), None);
        assert_eq!(c.attr_index(attrs::PHI_FREE_MEMORY), Some(0));
    }

    #[test]
    fn equality_ignores_index_registration_and_mutation_counters() {
        let mut a = Collector::new();
        let mut b = Collector::new();
        a.advertise(slot(1, 1), slot_ad(slot(1, 1), 1000));
        // b reaches the same observable state along a noisier path.
        b.advertise(slot(1, 1), slot_ad(slot(1, 1), 512));
        b.ensure_attr_index("SomethingElse").unwrap();
        b.set_int_attr(slot(1, 1), attrs::PHI_FREE_MEMORY, 1000);
        assert_eq!(a, b);
        b.claim(slot(1, 1));
        assert_ne!(a, b);
    }

    #[test]
    fn dirty_stamps_track_match_relevant_mutations_only() {
        let mut c = Collector::new();
        let s0 = c.seq();
        c.advertise(slot(1, 1), slot_ad(slot(1, 1), 7680));
        c.advertise(slot(1, 2), slot_ad(slot(1, 2), 7680));
        assert_eq!(c.dirty_since(s0).count(), 2);

        // Claims are not dirtying (they only remove candidates)...
        let s1 = c.seq();
        assert!(c.claim(slot(1, 1)));
        assert_eq!(c.dirty_since(s1).count(), 0);
        assert!(!c.dirtied_after(slot(1, 1), s1));
        // ...but releases are.
        c.release(slot(1, 1));
        assert_eq!(c.dirty_since(s1).collect::<Vec<_>>(), vec![slot(1, 1)]);

        // In-place decrements dirty the slot; no-op writes do not.
        let s2 = c.seq();
        c.set_int_attr(slot(1, 2), attrs::PHI_FREE_MEMORY, 4000);
        c.set_int_attr(slot(1, 2), attrs::PHI_FREE_MEMORY, 4000);
        c.refresh_phi_availability(slot(1, 1), 7680, 1); // mem unchanged, devices new
        assert_eq!(
            c.dirty_since(s2).collect::<Vec<_>>(),
            vec![slot(1, 2), slot(1, 1)]
        );

        // Each slot appears once, at its latest stamp.
        c.set_int_attr(slot(1, 2), attrs::PHI_FREE_MEMORY, 3000);
        assert_eq!(c.dirty_since(s0).count(), 2);
        assert_eq!(c.dirty_since(s2).last(), Some(slot(1, 2)));

        // Invalidation clears the node's dirty entries outright.
        c.invalidate_node(1);
        assert_eq!(c.dirty_since(s0).count(), 0);
    }

    #[test]
    fn refresh_equals_full_readvertise_under_generic_indexes() {
        let mut c = Collector::new();
        assert!(!c.refresh_phi_availability(slot(1, 1), 100, 1));
        c.advertise(
            slot(1, 1),
            crate::attrs::machine_ad("slot1@node1", "node1", 1, 8192, 7680, 1),
        );
        assert!(c.refresh_phi_availability(slot(1, 1), 512, 0));
        let mut full = Collector::new();
        full.advertise(
            slot(1, 1),
            crate::attrs::machine_ad("slot1@node1", "node1", 1, 8192, 512, 0),
        );
        assert_eq!(c, full);
        // The PhiDevicesFree index reflects the refresh too.
        let idx = c.attr_index(attrs::PHI_DEVICES_FREE).unwrap();
        assert_eq!(c.indexed_range_at_least(idx, 1.0).count(), 0);
        assert_eq!(c.indexed_range_at_least(idx, 0.0).count(), 1);
    }

    // --- partition-specific behaviour ---

    /// A pool spread over several nodes so every partition of a P-way
    /// collector owns some slots.
    fn spread_pool(c: &mut Collector) {
        for n in 1..=7 {
            for s in 1..=2 {
                c.advertise(slot(n, s), slot_ad(slot(n, s), (n * 1000 + s) as i64));
            }
        }
    }

    #[test]
    fn partition_count_is_clamped_and_reported() {
        assert_eq!(Collector::new().partitions(), 1);
        assert_eq!(Collector::with_partitions(0).partitions(), 1);
        assert_eq!(Collector::with_partitions(3).partitions(), 3);
        assert_eq!(Collector::with_partitions(999).partitions(), MAX_PARTITIONS);
    }

    #[test]
    fn partitioned_enumeration_matches_unpartitioned() {
        let mut one = Collector::new();
        let mut many = Collector::with_partitions(3);
        spread_pool(&mut one);
        spread_pool(&mut many);
        // Same slot enumeration, unclaimed scan, and range-query order.
        assert_eq!(one, many);
        assert_eq!(one.unclaimed(), many.unclaimed());
        assert_eq!(
            one.unclaimed_with_free_mem_at_least(3000.0)
                .collect::<Vec<_>>(),
            many.unclaimed_with_free_mem_at_least(3000.0)
                .collect::<Vec<_>>(),
        );
        // Claims and point lookups route to the right partition.
        assert!(many.claim(slot(5, 1)));
        assert!(many.get(slot(5, 1)).unwrap().claimed);
        one.claim(slot(5, 1));
        assert_eq!(one, many);
        assert_eq!(one.node_slots(5), many.node_slots(5));
        assert_eq!(one.len(), many.len());
    }

    #[test]
    fn partitioned_dirty_order_is_global_stamp_order() {
        let mut c = Collector::with_partitions(4);
        spread_pool(&mut c);
        let s0 = c.seq();
        // Dirty slots across partitions in an interleaved order; the merged
        // view must replay exactly that order.
        let touched = [slot(3, 1), slot(1, 2), slot(6, 1), slot(2, 2), slot(3, 2)];
        for (i, id) in touched.iter().enumerate() {
            c.set_int_attr(*id, attrs::PHI_FREE_MEMORY, 100 + i as i64);
        }
        assert_eq!(c.dirty_since(s0).collect::<Vec<_>>(), touched);
        // Per-partition views shard the same set disjointly.
        let mut sharded: Vec<SlotId> = (0..c.partitions())
            .flat_map(|pi| c.partition_dirty_since(pi, s0).collect::<Vec<_>>())
            .collect();
        sharded.sort();
        let mut all: Vec<SlotId> = c.dirty_since(s0).collect();
        all.sort();
        assert_eq!(sharded, all);
    }

    #[test]
    fn watermarks_advance_on_dirt_and_invalidation_only() {
        let mut c = Collector::with_partitions(2);
        assert_eq!(c.max_watermark(), 0);
        c.advertise(slot(1, 1), slot_ad(slot(1, 1), 4096));
        assert_eq!(c.max_watermark(), c.seq());
        // Claims are not dirtying, so the watermark holds still...
        let w = c.max_watermark();
        assert!(c.claim(slot(1, 1)));
        assert_eq!(c.max_watermark(), w);
        // ...while releases and decrements advance it.
        c.release(slot(1, 1));
        assert!(c.max_watermark() > w);
        // Invalidation leaves no dirty entry but still advances the
        // watermark: post-fault cycles must never look quiescent.
        let w = c.max_watermark();
        assert_eq!(c.invalidate_node(1), 1);
        assert_eq!(c.dirty_since(0).count(), 0);
        assert!(c.max_watermark() > w);
        // Invalidating an empty node is a true no-op.
        let w = c.max_watermark();
        assert_eq!(c.invalidate_node(1), 0);
        assert_eq!(c.max_watermark(), w);
    }

    #[test]
    fn partition_range_queries_shard_the_global_range() {
        let mut c = Collector::with_partitions(3);
        spread_pool(&mut c);
        let mut sharded: Vec<SlotId> = (0..c.partitions())
            .flat_map(|pi| {
                c.partition_indexed_range_at_least(pi, FREE_MEM_IDX, 3000.0)
                    .collect::<Vec<_>>()
            })
            .collect();
        sharded.sort();
        let mut all: Vec<SlotId> = c.unclaimed_with_free_mem_at_least(3000.0).collect();
        all.sort();
        assert_eq!(sharded, all);
        // Unclaimed scans shard likewise.
        let sharded: usize = (0..c.partitions())
            .map(|pi| c.partition_unclaimed_iter(pi).count())
            .sum();
        assert_eq!(sharded, c.unclaimed_iter().count());
    }

    #[test]
    fn indexed_attr_writes_match_the_scanning_path() {
        let mut a = Collector::new();
        let mut b = Collector::new();
        for c in [&mut a, &mut b] {
            c.advertise(slot(1, 1), slot_ad(slot(1, 1), 7680));
        }
        a.set_int_attr(slot(1, 1), attrs::lc::PHI_FREE_MEMORY, 1234);
        b.set_int_attr_at(
            slot(1, 1),
            Collector::FREE_MEM_INDEX,
            attrs::lc::PHI_FREE_MEMORY,
            1234,
        );
        assert_eq!(a, b);
        assert_eq!(
            a.unclaimed_with_free_mem_at_least(1234.0)
                .collect::<Vec<_>>(),
            b.unclaimed_with_free_mem_at_least(1234.0)
                .collect::<Vec<_>>(),
        );
        // The indexed write is still a no-op (and stays clean) for
        // unchanged values.
        let s = b.seq();
        b.set_int_attr_at(
            slot(1, 1),
            Collector::FREE_MEM_INDEX,
            attrs::lc::PHI_FREE_MEMORY,
            1234,
        );
        assert_eq!(b.seq(), s);
    }

    #[test]
    fn partitions_override_parses_and_clamps() {
        assert_eq!(partitions_override(None), None);
        assert_eq!(partitions_override(Some("")), None);
        assert_eq!(partitions_override(Some("0")), None);
        assert_eq!(partitions_override(Some("nope")), None);
        assert_eq!(partitions_override(Some("4")), Some(4));
        assert_eq!(partitions_override(Some(" 8 ")), Some(8));
        assert_eq!(partitions_override(Some("999")), Some(MAX_PARTITIONS));
    }

    #[test]
    fn partition_threads_override_caps_at_partitions() {
        assert_eq!(partition_threads_override(Some("4"), 8), 4);
        assert_eq!(partition_threads_override(Some("16"), 8), 8);
        // Zero and garbage fall back to host parallelism, still capped.
        let fallback = partition_threads_override(Some("0"), 8);
        assert!((1..=8).contains(&fallback));
        assert!(partition_threads_override(None, 2) <= 2);
    }

    #[test]
    fn partitions_env_override_is_honored() {
        // The one test that really reads the variable, through the shared
        // test-util env helper (set + restore under the process lock).
        use phishare_test_util::with_env_var;
        let var = "PHISHARE_COLLECTOR_PARTITIONS";
        assert_eq!(with_env_var(var, "6", default_partitions), 6);
        assert_eq!(with_env_var(var, "999", default_partitions), MAX_PARTITIONS);
        assert_eq!(with_env_var(var, "junk", default_partitions), 1);
    }
}
