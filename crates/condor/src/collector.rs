//! The collector: the central manager's view of every slot.
//!
//! Besides the authoritative `SlotId → SlotStatus` map, the collector
//! maintains three secondary indexes that the negotiator's fast path uses
//! to pre-screen candidates without walking every slot ad:
//!
//! * **name index** — advertised `Name` (lower-cased) → slot, for jobs
//!   pinned to a single slot;
//! * **machine index** — advertised `Machine` (lower-cased) → slots on that
//!   node, for jobs pinned to a node;
//! * **free-memory index** — unclaimed slots ordered by advertised
//!   `PhiFreeMemory`, so a job's compiled memory guard becomes a range
//!   query instead of a scan.
//!
//! Indexes are over-approximate by design: a candidate pulled from an index
//! is always re-checked against the full match predicate, so the indexes
//! only need to never *miss* a true match. They are kept coherent by every
//! mutation (`advertise`, `claim`, `release`, `set_int_attr`) — same-cycle
//! resource decrements are visible to the next range query immediately.

use crate::attrs;
use phishare_classad::{ClassAd, Value};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::ops::Bound;

/// Identifies one execution slot: `slot<slot>@node<node>`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SlotId {
    /// Node index within the cluster.
    pub node: u32,
    /// Slot index within the node (1-based, Condor style).
    pub slot: u32,
}

impl SlotId {
    /// The Condor-style slot name, e.g. `slot1@node3`.
    pub fn name(&self) -> String {
        format!("slot{}@node{}", self.slot, self.node)
    }

    /// The smallest possible slot id — the origin of index range scans.
    pub const MIN: SlotId = SlotId { node: 0, slot: 0 };
}

impl fmt::Display for SlotId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "slot{}@node{}", self.slot, self.node)
    }
}

/// Frequently-consulted facts extracted from a slot ad once per
/// advertisement, so the matchmaking inner loop never does attribute map
/// lookups (each of which lower-cases the key) for them.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SlotMeta {
    /// Advertised `Name`, lower-cased; `None` when absent or non-string.
    name_lc: Option<String>,
    /// Advertised `Machine`, lower-cased; `None` when absent or non-string.
    machine_lc: Option<String>,
    /// Advertised `PhiFreeMemory` as f64; `None` when absent/non-numeric.
    free_phi_mem: Option<f64>,
    /// Whether the slot ad carries a machine-side `Requirements` expression
    /// (most machine ads do not, letting the negotiator skip that half of
    /// the two-sided match entirely).
    has_requirements: bool,
}

impl SlotMeta {
    fn from_ad(ad: &ClassAd) -> Self {
        let str_attr = |name: &str| match ad.get(name) {
            Some(Value::Str(s)) => Some(s.to_ascii_lowercase()),
            _ => None,
        };
        SlotMeta {
            name_lc: str_attr(attrs::NAME),
            machine_lc: str_attr(attrs::MACHINE),
            free_phi_mem: ad
                .get(attrs::PHI_FREE_MEMORY)
                .and_then(Value::as_f64)
                .filter(|m| !m.is_nan()),
            has_requirements: ad.get_expr(phishare_classad::ad::REQUIREMENTS).is_some(),
        }
    }

    /// Whether the slot advertises a machine-side `Requirements`.
    pub fn has_requirements(&self) -> bool {
        self.has_requirements
    }

    /// The slot's advertised free Phi memory, if numeric.
    pub fn free_phi_mem(&self) -> Option<f64> {
        self.free_phi_mem
    }
}

/// A slot's entry in the collector.
#[derive(Debug, Clone, PartialEq)]
pub struct SlotStatus {
    /// The slot's current ClassAd.
    pub ad: ClassAd,
    /// Whether a job currently holds a claim on the slot.
    pub claimed: bool,
    meta: SlotMeta,
}

impl SlotStatus {
    /// Cached facts about the slot ad.
    pub fn meta(&self) -> &SlotMeta {
        &self.meta
    }
}

/// Order-preserving encoding of a non-NaN f64 into u64, so memory bounds
/// can key a `BTreeSet`.
fn ord_f64(x: f64) -> u64 {
    let bits = x.to_bits();
    if bits & (1 << 63) != 0 {
        !bits
    } else {
        bits | (1 << 63)
    }
}

/// The collector: slot name → latest advertisement, plus matchmaking
/// indexes (see module docs).
#[derive(Debug, Default, Clone, PartialEq)]
pub struct Collector {
    slots: BTreeMap<SlotId, SlotStatus>,
    /// Advertised `Name` (lower-cased) → slot.
    by_name: BTreeMap<String, SlotId>,
    /// Advertised `Machine` (lower-cased) → slots, in SlotId order.
    by_machine: BTreeMap<String, Vec<SlotId>>,
    /// Unclaimed slots keyed by advertised free Phi memory (ord-encoded).
    by_free_mem: BTreeSet<(u64, SlotId)>,
}

impl Collector {
    /// Create an empty collector.
    pub fn new() -> Self {
        Collector::default()
    }

    fn unindex(&mut self, slot: SlotId, status: &SlotStatus) {
        if let Some(name) = &status.meta.name_lc {
            self.by_name.remove(name);
        }
        if let Some(machine) = &status.meta.machine_lc {
            if let Some(ids) = self.by_machine.get_mut(machine) {
                ids.retain(|s| *s != slot);
                if ids.is_empty() {
                    self.by_machine.remove(machine);
                }
            }
        }
        if let Some(mem) = status.meta.free_phi_mem {
            self.by_free_mem.remove(&(ord_f64(mem), slot));
        }
    }

    fn index(&mut self, slot: SlotId, status: &SlotStatus) {
        if let Some(name) = &status.meta.name_lc {
            self.by_name.insert(name.clone(), slot);
        }
        if let Some(machine) = &status.meta.machine_lc {
            let ids = self.by_machine.entry(machine.clone()).or_default();
            let pos = ids.partition_point(|s| *s < slot);
            if ids.get(pos) != Some(&slot) {
                ids.insert(pos, slot);
            }
        }
        if !status.claimed {
            if let Some(mem) = status.meta.free_phi_mem {
                self.by_free_mem.insert((ord_f64(mem), slot));
            }
        }
    }

    /// Insert or refresh a slot's advertisement. Claim state is preserved on
    /// refresh and all indexes are rebuilt for the slot.
    pub fn advertise(&mut self, slot: SlotId, ad: ClassAd) {
        let claimed = match self.slots.remove(&slot) {
            Some(old) => {
                self.unindex(slot, &old);
                old.claimed
            }
            None => false,
        };
        let status = SlotStatus {
            meta: SlotMeta::from_ad(&ad),
            ad,
            claimed,
        };
        self.index(slot, &status);
        self.slots.insert(slot, status);
    }

    /// Look up a slot.
    pub fn get(&self, slot: SlotId) -> Option<&SlotStatus> {
        self.slots.get(&slot)
    }

    /// Overwrite one integer attribute of a slot's ad (the negotiator's
    /// in-cycle resource decrements), keeping the cached meta and the
    /// free-memory index coherent.
    pub fn set_int_attr(&mut self, slot: SlotId, attr: &str, value: i64) {
        let Some(status) = self.slots.get_mut(&slot) else {
            return;
        };
        status.ad.insert(attr, value);
        if attr.eq_ignore_ascii_case(attrs::PHI_FREE_MEMORY) {
            let old = status.meta.free_phi_mem;
            status.meta.free_phi_mem = Some(value as f64);
            if !status.claimed {
                if let Some(mem) = old {
                    self.by_free_mem.remove(&(ord_f64(mem), slot));
                }
                self.by_free_mem.insert((ord_f64(value as f64), slot));
            }
        }
    }

    /// Refresh the node-level Phi availability attributes of an existing
    /// slot ad in place (`PhiFreeMemory`, `PhiDevicesFree`), keeping the
    /// cached meta and the free-memory index coherent. Equivalent to
    /// re-advertising the same machine ad with new availability numbers,
    /// but skips rebuilding the ad's fixed attributes — and skips the
    /// write entirely for values that already match. Returns `false` when
    /// the slot has never been advertised (the caller must publish a full
    /// ad first).
    pub fn refresh_phi_availability(
        &mut self,
        slot: SlotId,
        free_mem_mb: u64,
        devices_free: u32,
    ) -> bool {
        let Some(status) = self.slots.get_mut(&slot) else {
            return false;
        };
        let free = free_mem_mb as f64;
        if status.meta.free_phi_mem != Some(free) {
            status.ad.insert(attrs::PHI_FREE_MEMORY, free_mem_mb);
            let old = status.meta.free_phi_mem;
            status.meta.free_phi_mem = Some(free);
            if !status.claimed {
                if let Some(mem) = old {
                    self.by_free_mem.remove(&(ord_f64(mem), slot));
                }
                self.by_free_mem.insert((ord_f64(free), slot));
            }
        }
        if status.ad.get(attrs::PHI_DEVICES_FREE) != Some(&Value::Int(devices_free as i64)) {
            status
                .ad
                .insert(attrs::PHI_DEVICES_FREE, devices_free as i64);
        }
        true
    }

    /// Mark a slot claimed. Returns false if it was already claimed.
    pub fn claim(&mut self, slot: SlotId) -> bool {
        match self.slots.get_mut(&slot) {
            Some(s) if !s.claimed => {
                s.claimed = true;
                if let Some(mem) = s.meta.free_phi_mem {
                    self.by_free_mem.remove(&(ord_f64(mem), slot));
                }
                true
            }
            _ => false,
        }
    }

    /// Release a slot's claim.
    pub fn release(&mut self, slot: SlotId) {
        if let Some(s) = self.slots.get_mut(&slot) {
            if s.claimed {
                s.claimed = false;
                if let Some(mem) = s.meta.free_phi_mem {
                    self.by_free_mem.insert((ord_f64(mem), slot));
                }
            }
        }
    }

    /// All slots in deterministic (node, slot) order.
    pub fn slots(&self) -> impl Iterator<Item = (&SlotId, &SlotStatus)> {
        self.slots.iter()
    }

    /// Unclaimed slots in deterministic order.
    pub fn unclaimed(&self) -> Vec<SlotId> {
        self.unclaimed_iter().collect()
    }

    /// [`Collector::unclaimed`] without the allocation.
    pub fn unclaimed_iter(&self) -> impl Iterator<Item = SlotId> + '_ {
        self.slots
            .iter()
            .filter(|(_, s)| !s.claimed)
            .map(|(id, _)| *id)
    }

    /// The slot advertising `Name == name` (case-insensitive), if any.
    pub fn slot_by_name(&self, name: &str) -> Option<SlotId> {
        self.by_name.get(&name.to_ascii_lowercase()).copied()
    }

    /// Slots advertising `Machine == machine` (case-insensitive), in
    /// SlotId order.
    pub fn slots_on_machine(&self, machine: &str) -> &[SlotId] {
        self.by_machine
            .get(&machine.to_ascii_lowercase())
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Unclaimed slots whose advertised `PhiFreeMemory` is numeric and
    /// `>= bound`, in ascending free-memory order. Slots without a numeric
    /// `PhiFreeMemory` are absent — exactly the slots a numeric memory
    /// guard would reject anyway.
    pub fn unclaimed_with_free_mem_at_least(
        &self,
        bound: f64,
    ) -> impl Iterator<Item = SlotId> + '_ {
        let start = Bound::Included((ord_f64(bound), SlotId::MIN));
        self.by_free_mem
            .range((start, Bound::Unbounded))
            .map(|(_, slot)| *slot)
    }

    /// Invalidate every ClassAd `node` has ever advertised (`condor_off`
    /// semantics / ad expiry after a missed update deadline): the slots —
    /// claimed or not — vanish from the collector and all its indexes, so a
    /// dead startd stops matching immediately. Returns how many slots were
    /// dropped. A later [`Startd::advertise`](crate::Startd) re-registers
    /// the node from scratch.
    pub fn invalidate_node(&mut self, node: u32) -> usize {
        let ids = self.node_slots(node);
        for slot in &ids {
            if let Some(status) = self.slots.remove(slot) {
                self.unindex(*slot, &status);
            }
        }
        ids.len()
    }

    /// Slots belonging to `node`.
    pub fn node_slots(&self, node: u32) -> Vec<SlotId> {
        self.slots
            .range(SlotId { node, slot: 0 }..)
            .take_while(|(id, _)| id.node == node)
            .map(|(id, _)| *id)
            .collect()
    }

    /// Number of registered slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when no slots are registered.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn slot(n: u32, s: u32) -> SlotId {
        SlotId { node: n, slot: s }
    }

    fn slot_ad(id: SlotId, free_mem: i64) -> ClassAd {
        let mut ad = ClassAd::new();
        ad.insert(attrs::NAME, id.name());
        ad.insert(attrs::MACHINE, format!("node{}", id.node));
        ad.insert(attrs::PHI_FREE_MEMORY, free_mem);
        ad
    }

    #[test]
    fn slot_names_match_condor_convention() {
        assert_eq!(slot(3, 1).name(), "slot1@node3");
        assert_eq!(slot(3, 1).to_string(), "slot1@node3");
    }

    #[test]
    fn advertise_and_claim() {
        let mut c = Collector::new();
        c.advertise(slot(1, 1), ClassAd::new());
        c.advertise(slot(1, 2), ClassAd::new());
        assert_eq!(c.len(), 2);
        assert!(c.claim(slot(1, 1)));
        assert!(!c.claim(slot(1, 1))); // double claim fails
        assert_eq!(c.unclaimed(), vec![slot(1, 2)]);
        c.release(slot(1, 1));
        assert_eq!(c.unclaimed().len(), 2);
    }

    #[test]
    fn refresh_preserves_claim_state() {
        let mut c = Collector::new();
        c.advertise(slot(1, 1), ClassAd::new());
        c.claim(slot(1, 1));
        let mut ad = ClassAd::new();
        ad.insert("PhiFreeMemory", 4096u64);
        c.advertise(slot(1, 1), ad);
        assert!(c.get(slot(1, 1)).unwrap().claimed);
        assert!(c.get(slot(1, 1)).unwrap().ad.get("PhiFreeMemory").is_some());
    }

    #[test]
    fn node_slots_filters_by_node() {
        let mut c = Collector::new();
        for n in 1..=2 {
            for s in 1..=3 {
                c.advertise(slot(n, s), ClassAd::new());
            }
        }
        assert_eq!(c.node_slots(2), vec![slot(2, 1), slot(2, 2), slot(2, 3)]);
    }

    #[test]
    fn invalidate_node_drops_slots_and_indexes() {
        let mut c = Collector::new();
        for n in 1..=2 {
            for s in 1..=2 {
                c.advertise(slot(n, s), slot_ad(slot(n, s), 4096));
            }
        }
        c.claim(slot(1, 1)); // claimed slots vanish too
        assert_eq!(c.invalidate_node(1), 2);
        assert!(c.node_slots(1).is_empty());
        assert_eq!(c.len(), 2);
        // Every index forgot the node: name, machine, and free-memory scans
        // only see the survivor.
        assert_eq!(c.slot_by_name("slot1@node1"), None);
        assert!(c.slots_on_machine("node1").is_empty());
        assert!(c.unclaimed_with_free_mem_at_least(0.0).all(|s| s.node == 2));
        // Idempotent, and releasing a vanished claim is a no-op.
        assert_eq!(c.invalidate_node(1), 0);
        c.release(slot(1, 1));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn ordering_is_deterministic() {
        let mut c = Collector::new();
        c.advertise(slot(2, 1), ClassAd::new());
        c.advertise(slot(1, 2), ClassAd::new());
        c.advertise(slot(1, 1), ClassAd::new());
        let order: Vec<SlotId> = c.slots().map(|(id, _)| *id).collect();
        assert_eq!(order, vec![slot(1, 1), slot(1, 2), slot(2, 1)]);
    }

    #[test]
    fn name_index_finds_slots_case_insensitively() {
        let mut c = Collector::new();
        c.advertise(slot(3, 2), slot_ad(slot(3, 2), 7680));
        assert_eq!(c.slot_by_name("SLOT2@NODE3"), Some(slot(3, 2)));
        assert_eq!(c.slot_by_name("slot9@node9"), None);
    }

    #[test]
    fn machine_index_lists_node_slots_in_order() {
        let mut c = Collector::new();
        for s in [2, 1, 3] {
            c.advertise(slot(4, s), slot_ad(slot(4, s), 1000));
        }
        assert_eq!(
            c.slots_on_machine("Node4"),
            &[slot(4, 1), slot(4, 2), slot(4, 3)]
        );
        assert!(c.slots_on_machine("node9").is_empty());
    }

    #[test]
    fn free_mem_index_answers_range_queries() {
        let mut c = Collector::new();
        c.advertise(slot(1, 1), slot_ad(slot(1, 1), 512));
        c.advertise(slot(1, 2), slot_ad(slot(1, 2), 3000));
        c.advertise(slot(2, 1), slot_ad(slot(2, 1), 7680));
        // A slot without numeric free memory never appears in the index.
        c.advertise(slot(2, 2), ClassAd::new());

        let at_least = |b: f64| -> Vec<SlotId> { c.unclaimed_with_free_mem_at_least(b).collect() };
        assert_eq!(at_least(0.0).len(), 3);
        assert_eq!(at_least(1000.0), vec![slot(1, 2), slot(2, 1)]);
        assert_eq!(at_least(3000.0), vec![slot(1, 2), slot(2, 1)]); // inclusive
        assert_eq!(at_least(8000.0), Vec::<SlotId>::new());
    }

    #[test]
    fn claim_and_release_maintain_free_mem_index() {
        let mut c = Collector::new();
        c.advertise(slot(1, 1), slot_ad(slot(1, 1), 7680));
        c.claim(slot(1, 1));
        assert_eq!(c.unclaimed_with_free_mem_at_least(0.0).count(), 0);
        c.release(slot(1, 1));
        assert_eq!(c.unclaimed_with_free_mem_at_least(0.0).count(), 1);
    }

    #[test]
    fn set_int_attr_updates_ad_meta_and_index() {
        let mut c = Collector::new();
        c.advertise(slot(1, 1), slot_ad(slot(1, 1), 7680));
        c.set_int_attr(slot(1, 1), attrs::PHI_FREE_MEMORY, 4000);
        assert_eq!(
            c.get(slot(1, 1)).unwrap().ad.get(attrs::PHI_FREE_MEMORY),
            Some(&phishare_classad::Value::Int(4000))
        );
        assert_eq!(
            c.get(slot(1, 1)).unwrap().meta().free_phi_mem(),
            Some(4000.0)
        );
        assert_eq!(c.unclaimed_with_free_mem_at_least(5000.0).count(), 0);
        assert_eq!(
            c.unclaimed_with_free_mem_at_least(4000.0)
                .collect::<Vec<_>>(),
            vec![slot(1, 1)]
        );
        // Non-memory attributes leave the index untouched.
        c.set_int_attr(slot(1, 1), attrs::PHI_DEVICES_FREE, 0);
        assert_eq!(c.unclaimed_with_free_mem_at_least(4000.0).count(), 1);
    }

    #[test]
    fn re_advertise_rebuilds_indexes() {
        let mut c = Collector::new();
        c.advertise(slot(1, 1), slot_ad(slot(1, 1), 512));
        // Refresh with different name and more memory.
        let mut ad = ClassAd::new();
        ad.insert(attrs::NAME, "renamed@node1");
        ad.insert(attrs::PHI_FREE_MEMORY, 6000i64);
        c.advertise(slot(1, 1), ad);
        assert_eq!(c.slot_by_name("slot1@node1"), None);
        assert_eq!(c.slot_by_name("renamed@node1"), Some(slot(1, 1)));
        assert_eq!(
            c.unclaimed_with_free_mem_at_least(1000.0)
                .collect::<Vec<_>>(),
            vec![slot(1, 1)]
        );
    }
}
