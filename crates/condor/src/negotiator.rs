//! The negotiator: periodic FIFO matchmaking cycles.
//!
//! "The central manager then initiates a negotiation cycle during which all
//! pending jobs are examined in FIFO order, and matched with machines.
//! Negotiation cycles are triggered periodically." (§II-D)
//!
//! The paper's scheduler interacts with this component only indirectly: it
//! qedits job `Requirements` and then *waits for the next cycle* — the
//! source of the integration overhead the paper observes on the high-skew
//! distribution (§V-B).
//!
//! # Fast path
//!
//! [`Negotiator::negotiate_with_stats`] runs the *compiled* match path:
//! each pending job's [`CompiledReq`] (cached on the queue, rebuilt on
//! qedit) picks the narrowest collector index that covers its guards —
//! name pin → single slot, machine pin → that node's slots, numeric
//! `PhiFreeMemory` guard → free-memory range query — and only the
//! pre-screened candidates are re-checked against the full predicate.
//! The pre-screen is a superset of the true matches and the winner rule
//! (max rank, ties to the lowest slot id) is order-independent, so the
//! fast path provably selects the same match as a full scan.
//!
//! [`Negotiator::negotiate_naive_with_stats`] retains the original
//! implementation — a full scan that re-parses `Requirements`/`Rank` for
//! every (job, slot) pair — as the differential-testing baseline and the
//! "before" side of the negotiation benchmark.

use crate::attrs;
use crate::collector::{Collector, SlotId};
use crate::queue::JobQueue;
use phishare_classad::ad::{RANK, REQUIREMENTS};
use phishare_classad::{eval, parse, ClassAd, CompiledReq, Value};
use phishare_sim::SimDuration;
use phishare_workload::JobId;

/// Summary of one negotiation cycle (what the negotiator logs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CycleStats {
    /// Pending jobs examined (FIFO order).
    pub considered: usize,
    /// Jobs matched to a slot this cycle.
    pub matched: usize,
    /// Jobs left pending: no unclaimed slot satisfied the two-sided match.
    pub unmatched: usize,
}

/// A successful match produced by one cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Match {
    /// The matched job.
    pub job: JobId,
    /// The slot the job will run on.
    pub slot: SlotId,
}

/// The matchmaking component of the central manager.
#[derive(Debug, Clone, Copy)]
pub struct Negotiator {
    /// Gap between negotiation cycles (HTCondor's `NEGOTIATOR_INTERVAL`,
    /// 60 s by default; the paper's overhead analysis hinges on this).
    pub interval: SimDuration,
}

impl Default for Negotiator {
    fn default() -> Self {
        Negotiator {
            interval: SimDuration::from_secs(60),
        }
    }
}

impl Negotiator {
    /// Create a negotiator with the given cycle interval.
    pub fn new(interval: SimDuration) -> Self {
        Negotiator { interval }
    }

    /// Run one negotiation cycle: examine pending jobs in FIFO order, match
    /// each against the unclaimed slots, claim matched slots and decrement
    /// the matched node's advertised Phi resources so the *same cycle*
    /// cannot overcommit them.
    pub fn negotiate(&self, queue: &mut JobQueue, collector: &mut Collector) -> Vec<Match> {
        self.negotiate_with_stats(queue, collector).0
    }

    /// [`Negotiator::negotiate`] plus the cycle's accounting. This is the
    /// compiled fast path (see module docs); it clones no ads and reuses
    /// one candidate buffer across all jobs of the cycle.
    pub fn negotiate_with_stats(
        &self,
        queue: &mut JobQueue,
        collector: &mut Collector,
    ) -> (Vec<Match>, CycleStats) {
        let mut stats = CycleStats::default();
        let mut matches = Vec::new();
        let mut candidates: Vec<SlotId> = Vec::new();
        for job_id in queue.pending() {
            stats.considered += 1;
            // Scan under an immutable borrow; copy out the commit
            // parameters so the mutations below need no clone of the ad.
            let decision = {
                let job = queue.get(job_id).expect("pending job exists");
                best_slot(&job.ad, job.compiled(), collector, &mut candidates).map(|slot| {
                    (
                        slot,
                        int_attr(&job.ad, attrs::REQUEST_PHI_MEMORY).unwrap_or(0),
                        matches!(
                            job.ad.get(attrs::REQUEST_EXCLUSIVE_PHI),
                            Some(Value::Bool(true))
                        ),
                    )
                })
            };

            if let Some((slot, mem, exclusive)) = decision {
                let claimed = collector.claim(slot);
                debug_assert!(claimed, "unclaimed slot failed to claim");
                queue
                    .set_matched(job_id, slot)
                    .expect("pending job transitions to matched");
                commit_phi_resources(collector, slot.node, mem, exclusive);
                matches.push(Match { job: job_id, slot });
                stats.matched += 1;
            } else {
                stats.unmatched += 1;
            }
        }
        (matches, stats)
    }

    /// The pre-optimization negotiation cycle, kept verbatim as the
    /// reference implementation: scan every unclaimed slot for every job
    /// and re-parse each expression per evaluation. Differential tests
    /// hold the fast path to byte-identical matches and stats against
    /// this; the negotiation benchmark reports the speedup over it.
    pub fn negotiate_naive_with_stats(
        &self,
        queue: &mut JobQueue,
        collector: &mut Collector,
    ) -> (Vec<Match>, CycleStats) {
        let mut stats = CycleStats::default();
        let mut matches = Vec::new();
        for job_id in queue.pending() {
            stats.considered += 1;
            let job_ad = queue.get(job_id).expect("pending job exists").ad.clone();

            // Collect matching unclaimed slots with their rank.
            let mut best: Option<(f64, SlotId)> = None;
            for slot in collector.unclaimed() {
                let status = collector.get(slot).expect("listed slot exists");
                if naive_matches(&job_ad, &status.ad) {
                    let rank = naive_rank(&job_ad, &status.ad);
                    let better = match best {
                        None => true,
                        // Higher rank wins; ties go to the lowest slot id so
                        // cycles are deterministic.
                        Some((r, s)) => rank > r || (rank == r && slot < s),
                    };
                    if better {
                        best = Some((rank, slot));
                    }
                }
            }

            if let Some((_, slot)) = best {
                let claimed = collector.claim(slot);
                debug_assert!(claimed, "unclaimed slot failed to claim");
                queue
                    .set_matched(job_id, slot)
                    .expect("pending job transitions to matched");
                let mem = int_attr(&job_ad, attrs::REQUEST_PHI_MEMORY).unwrap_or(0);
                let exclusive = matches!(
                    job_ad.get(attrs::REQUEST_EXCLUSIVE_PHI),
                    Some(Value::Bool(true))
                );
                commit_phi_resources(collector, slot.node, mem, exclusive);
                matches.push(Match { job: job_id, slot });
                stats.matched += 1;
            } else {
                stats.unmatched += 1;
            }
        }
        (matches, stats)
    }
}

/// Find the best slot for one job using the compiled requirement and the
/// collector's indexes. `candidates` is caller-owned scratch, reused across
/// jobs to avoid per-job allocation.
fn best_slot(
    job_ad: &ClassAd,
    req: &CompiledReq,
    collector: &Collector,
    candidates: &mut Vec<SlotId>,
) -> Option<SlotId> {
    if req.is_never() {
        return None;
    }

    // Pre-screen: pick the narrowest index the compiled guards allow. Each
    // source yields a superset of the job's true matches among unclaimed
    // slots (claimed slots are filtered below), so the full re-check keeps
    // the result exact.
    candidates.clear();
    if let Some(name) = req.pin(attrs::NAME) {
        candidates.extend(collector.slot_by_name(name));
    } else if let Some(machine) = req.pin(attrs::MACHINE) {
        candidates.extend_from_slice(collector.slots_on_machine(machine));
    } else if let Some(bound) = req.lower_bound(attrs::PHI_FREE_MEMORY) {
        candidates.extend(collector.unclaimed_with_free_mem_at_least(bound));
    } else {
        candidates.extend(collector.unclaimed_iter());
    }

    let rank_expr = job_ad.parsed_expr(RANK);
    let mut best: Option<(f64, SlotId)> = None;
    for &slot in candidates.iter() {
        let status = collector.get(slot).expect("indexed slot exists");
        if status.claimed || !req.matches_target(job_ad, &status.ad) {
            continue;
        }
        // Machine-side half of the two-sided match. Most slot ads carry no
        // Requirements (the meta flag is precomputed), so this usually
        // costs nothing.
        if status.meta().has_requirements() && !status.ad.requirements_satisfied(job_ad) {
            continue;
        }
        let rank = match rank_expr {
            None => 0.0,
            Some(e) => eval(e, job_ad, Some(&status.ad)).as_f64().unwrap_or(0.0),
        };
        let better = match best {
            None => true,
            // Same winner rule as the naive scan: higher rank wins, ties go
            // to the lowest slot id. Order-independent, so the candidate
            // enumeration order cannot change the result.
            Some((r, s)) => rank > r || (rank == r && slot < s),
        };
        if better {
            best = Some((rank, slot));
        }
    }
    best.map(|(_, slot)| slot)
}

/// Decrement the node-level Phi attributes on every slot ad of `node` to
/// reflect a new placement for the remainder of this cycle. Routed through
/// [`Collector::set_int_attr`] so the free-memory index stays coherent —
/// a later job in the *same cycle* sees the reduced capacity in its range
/// query.
fn commit_phi_resources(collector: &mut Collector, node: u32, mem: i64, exclusive: bool) {
    for slot in collector.node_slots(node) {
        let status = collector.get(slot).expect("listed slot exists");
        let free = int_attr(&status.ad, attrs::PHI_FREE_MEMORY);
        let devs = if exclusive {
            int_attr(&status.ad, attrs::PHI_DEVICES_FREE)
        } else {
            None
        };
        if let Some(free) = free {
            collector.set_int_attr(slot, attrs::PHI_FREE_MEMORY, (free - mem).max(0));
        }
        if let Some(devs) = devs {
            collector.set_int_attr(slot, attrs::PHI_DEVICES_FREE, (devs - 1).max(0));
        }
    }
}

fn int_attr(ad: &ClassAd, name: &str) -> Option<i64> {
    match ad.get(name) {
        Some(Value::Int(i)) => Some(*i),
        _ => None,
    }
}

// --- Naive evaluation helpers -----------------------------------------
//
// These deliberately re-parse the stored expression source on every call,
// reproducing the pre-optimization cost model (the ClassAd layer itself now
// caches parsed ASTs, which would otherwise quietly speed up the baseline).

fn naive_requirements_satisfied(my: &ClassAd, target: &ClassAd) -> bool {
    match my.get_expr(REQUIREMENTS) {
        None => true,
        Some(src) => {
            let expr = parse(src).expect("stored expression parses");
            eval(&expr, my, Some(target)).is_true()
        }
    }
}

fn naive_matches(job: &ClassAd, machine: &ClassAd) -> bool {
    naive_requirements_satisfied(job, machine) && naive_requirements_satisfied(machine, job)
}

fn naive_rank(job: &ClassAd, machine: &ClassAd) -> f64 {
    match job.get_expr(RANK) {
        None => 0.0,
        Some(src) => {
            let expr = parse(src).expect("stored expression parses");
            eval(&expr, job, Some(machine)).as_f64().unwrap_or(0.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attrs::{exclusive_job_ad, sharing_job_ad};
    use crate::startd::Startd;
    use phishare_sim::{SimDuration, SimTime};
    use phishare_workload::table1::AppKind;
    use phishare_workload::{JobProfile, JobSpec, Segment};

    fn spec(id: u64, mem: u64, threads: u32) -> JobSpec {
        JobSpec {
            id: JobId(id),
            name: format!("J{id}"),
            app: AppKind::KM,
            mem_req_mb: mem,
            thread_req: threads,
            actual_peak_mem_mb: mem,
            profile: JobProfile::new(vec![Segment::offload(threads, SimDuration::from_secs(1))]),
        }
    }

    fn cluster(nodes: u32, slots: u32) -> Collector {
        let mut c = Collector::new();
        for n in 1..=nodes {
            Startd::new(n, slots, 1, 8192).advertise(&mut c, 7680, 1);
        }
        c
    }

    #[test]
    fn fifo_matching_fills_slots() {
        let mut q = JobQueue::new();
        for i in 0..3 {
            q.submit(JobId(i), sharing_job_ad(&spec(i, 1000, 60)), SimTime::ZERO)
                .unwrap();
        }
        let mut c = cluster(1, 2);
        let matches = Negotiator::default().negotiate(&mut q, &mut c);
        // Two slots → two matches; job 2 stays pending.
        assert_eq!(matches.len(), 2);
        assert_eq!(matches[0].job, JobId(0));
        assert_eq!(matches[1].job, JobId(1));
        assert_eq!(q.pending(), vec![JobId(2)]);
    }

    #[test]
    fn cycle_decrements_node_phi_memory() {
        let mut q = JobQueue::new();
        // Three 3000 MB jobs against one node with 7680 MB: only two fit in
        // one cycle even though the node has plenty of host slots.
        for i in 0..3 {
            q.submit(JobId(i), sharing_job_ad(&spec(i, 3000, 60)), SimTime::ZERO)
                .unwrap();
        }
        let mut c = cluster(1, 16);
        let matches = Negotiator::default().negotiate(&mut q, &mut c);
        assert_eq!(matches.len(), 2);
        let remaining = c
            .get(SlotId { node: 1, slot: 3 })
            .unwrap()
            .ad
            .get(attrs::PHI_FREE_MEMORY)
            .cloned();
        assert_eq!(remaining, Some(Value::Int(7680 - 6000)));
    }

    #[test]
    fn exclusive_jobs_claim_whole_cards() {
        let mut q = JobQueue::new();
        for i in 0..2 {
            q.submit(
                JobId(i),
                exclusive_job_ad(&spec(i, 1000, 240)),
                SimTime::ZERO,
            )
            .unwrap();
        }
        let mut c = cluster(1, 16); // one node, one Phi card
        let matches = Negotiator::default().negotiate(&mut q, &mut c);
        // One card → one exclusive job per cycle, regardless of host slots.
        assert_eq!(matches.len(), 1);
        assert_eq!(q.pending(), vec![JobId(1)]);
    }

    #[test]
    fn matches_spread_across_nodes() {
        let mut q = JobQueue::new();
        for i in 0..2 {
            q.submit(
                JobId(i),
                exclusive_job_ad(&spec(i, 1000, 240)),
                SimTime::ZERO,
            )
            .unwrap();
        }
        let mut c = cluster(2, 1);
        let matches = Negotiator::default().negotiate(&mut q, &mut c);
        assert_eq!(matches.len(), 2);
        assert_ne!(matches[0].slot.node, matches[1].slot.node);
    }

    #[test]
    fn pinned_job_goes_to_its_slot_only() {
        let mut q = JobQueue::new();
        q.submit(JobId(0), sharing_job_ad(&spec(0, 1000, 60)), SimTime::ZERO)
            .unwrap();
        q.qedit_expr(
            JobId(0),
            "Requirements",
            &attrs::pin_requirements("slot2@node3"),
        )
        .unwrap();
        let mut c = cluster(4, 4);
        let matches = Negotiator::default().negotiate(&mut q, &mut c);
        assert_eq!(matches.len(), 1);
        assert_eq!(matches[0].slot, SlotId { node: 3, slot: 2 });
    }

    #[test]
    fn node_pinned_job_stays_on_its_node() {
        let mut q = JobQueue::new();
        q.submit(JobId(0), sharing_job_ad(&spec(0, 1000, 60)), SimTime::ZERO)
            .unwrap();
        q.qedit_expr(JobId(0), "Requirements", &attrs::pin_to_node("node2"))
            .unwrap();
        let mut c = cluster(4, 4);
        let matches = Negotiator::default().negotiate(&mut q, &mut c);
        assert_eq!(matches.len(), 1);
        assert_eq!(matches[0].slot.node, 2);
    }

    #[test]
    fn no_candidates_leaves_job_pending() {
        let mut q = JobQueue::new();
        q.submit(JobId(0), sharing_job_ad(&spec(0, 9000, 60)), SimTime::ZERO)
            .unwrap(); // bigger than any card
        let mut c = cluster(2, 2);
        assert!(Negotiator::default().negotiate(&mut q, &mut c).is_empty());
        assert_eq!(q.pending(), vec![JobId(0)]);
    }

    #[test]
    fn cycle_stats_account_for_every_pending_job() {
        let mut q = JobQueue::new();
        for i in 0..5 {
            q.submit(JobId(i), sharing_job_ad(&spec(i, 1000, 60)), SimTime::ZERO)
                .unwrap();
        }
        let mut c = cluster(1, 3);
        let (matches, stats) = Negotiator::default().negotiate_with_stats(&mut q, &mut c);
        assert_eq!(stats.considered, 5);
        assert_eq!(stats.matched, matches.len());
        assert_eq!(stats.matched, 3); // three slots
        assert_eq!(stats.unmatched, 2);
        assert_eq!(stats.considered, stats.matched + stats.unmatched);
    }

    #[test]
    fn claimed_slots_are_skipped() {
        let mut q = JobQueue::new();
        for i in 0..2 {
            q.submit(JobId(i), sharing_job_ad(&spec(i, 100, 60)), SimTime::ZERO)
                .unwrap();
        }
        let mut c = cluster(1, 1);
        let first = Negotiator::default().negotiate(&mut q, &mut c);
        assert_eq!(first.len(), 1);
        // Slot still claimed: second cycle matches nothing.
        let second = Negotiator::default().negotiate(&mut q, &mut c);
        assert!(second.is_empty());
        // Release → job 1 matches.
        c.release(first[0].slot);
        let third = Negotiator::default().negotiate(&mut q, &mut c);
        assert_eq!(third.len(), 1);
        assert_eq!(third[0].job, JobId(1));
    }

    #[test]
    fn fast_and_naive_paths_agree_on_a_mixed_cycle() {
        let build = || {
            let mut q = JobQueue::new();
            q.submit(JobId(0), sharing_job_ad(&spec(0, 3000, 60)), SimTime::ZERO)
                .unwrap();
            q.submit(
                JobId(1),
                exclusive_job_ad(&spec(1, 1000, 240)),
                SimTime::ZERO,
            )
            .unwrap();
            q.submit(JobId(2), sharing_job_ad(&spec(2, 9000, 60)), SimTime::ZERO)
                .unwrap();
            q.submit(JobId(3), sharing_job_ad(&spec(3, 500, 60)), SimTime::ZERO)
                .unwrap();
            q.qedit_expr(
                JobId(3),
                "Requirements",
                &attrs::pin_requirements("slot1@node2"),
            )
            .unwrap();
            (q, cluster(3, 2))
        };
        let (mut q_fast, mut c_fast) = build();
        let (mut q_naive, mut c_naive) = build();
        let fast = Negotiator::default().negotiate_with_stats(&mut q_fast, &mut c_fast);
        let naive = Negotiator::default().negotiate_naive_with_stats(&mut q_naive, &mut c_naive);
        assert_eq!(fast, naive);
        assert_eq!(c_fast, c_naive);
        assert_eq!(q_fast.pending(), q_naive.pending());
    }
}
