//! The negotiator: periodic FIFO matchmaking cycles.
//!
//! "The central manager then initiates a negotiation cycle during which all
//! pending jobs are examined in FIFO order, and matched with machines.
//! Negotiation cycles are triggered periodically." (§II-D)
//!
//! The paper's scheduler interacts with this component only indirectly: it
//! qedits job `Requirements` and then *waits for the next cycle* — the
//! source of the integration overhead the paper observes on the high-skew
//! distribution (§V-B).

use crate::attrs;
use crate::collector::{Collector, SlotId};
use crate::queue::JobQueue;
use phishare_classad::Value;
use phishare_sim::SimDuration;
use phishare_workload::JobId;

/// Summary of one negotiation cycle (what the negotiator logs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CycleStats {
    /// Pending jobs examined (FIFO order).
    pub considered: usize,
    /// Jobs matched to a slot this cycle.
    pub matched: usize,
    /// Jobs left pending: no unclaimed slot satisfied the two-sided match.
    pub unmatched: usize,
}

/// A successful match produced by one cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Match {
    /// The matched job.
    pub job: JobId,
    /// The slot the job will run on.
    pub slot: SlotId,
}

/// The matchmaking component of the central manager.
#[derive(Debug, Clone, Copy)]
pub struct Negotiator {
    /// Gap between negotiation cycles (HTCondor's `NEGOTIATOR_INTERVAL`,
    /// 60 s by default; the paper's overhead analysis hinges on this).
    pub interval: SimDuration,
}

impl Default for Negotiator {
    fn default() -> Self {
        Negotiator {
            interval: SimDuration::from_secs(60),
        }
    }
}

impl Negotiator {
    /// Create a negotiator with the given cycle interval.
    pub fn new(interval: SimDuration) -> Self {
        Negotiator { interval }
    }

    /// Run one negotiation cycle: examine pending jobs in FIFO order, match
    /// each against the unclaimed slots, claim matched slots and decrement
    /// the matched node's advertised Phi resources so the *same cycle*
    /// cannot overcommit them.
    pub fn negotiate(&self, queue: &mut JobQueue, collector: &mut Collector) -> Vec<Match> {
        self.negotiate_with_stats(queue, collector).0
    }

    /// [`Negotiator::negotiate`] plus the cycle's accounting.
    pub fn negotiate_with_stats(
        &self,
        queue: &mut JobQueue,
        collector: &mut Collector,
    ) -> (Vec<Match>, CycleStats) {
        let mut stats = CycleStats::default();
        let mut matches = Vec::new();
        for job_id in queue.pending() {
            stats.considered += 1;
            let job_ad = queue.get(job_id).expect("pending job exists").ad.clone();

            // Collect matching unclaimed slots with their rank.
            let mut best: Option<(f64, SlotId)> = None;
            for slot in collector.unclaimed() {
                let status = collector.get(slot).expect("listed slot exists");
                if job_ad.matches(&status.ad) {
                    let rank = job_ad.rank(&status.ad);
                    let better = match best {
                        None => true,
                        // Higher rank wins; ties go to the lowest slot id so
                        // cycles are deterministic.
                        Some((r, s)) => rank > r || (rank == r && slot < s),
                    };
                    if better {
                        best = Some((rank, slot));
                    }
                }
            }

            if let Some((_, slot)) = best {
                let claimed = collector.claim(slot);
                debug_assert!(claimed, "unclaimed slot failed to claim");
                queue
                    .set_matched(job_id, slot)
                    .expect("pending job transitions to matched");
                self.commit_phi_resources(collector, slot.node, &job_ad);
                matches.push(Match { job: job_id, slot });
                stats.matched += 1;
            } else {
                stats.unmatched += 1;
            }
        }
        (matches, stats)
    }

    /// Decrement the node-level Phi attributes on every slot ad of `node`
    /// to reflect the new placement, for the remainder of this cycle.
    fn commit_phi_resources(
        &self,
        collector: &mut Collector,
        node: u32,
        job_ad: &phishare_classad::ClassAd,
    ) {
        let mem = int_attr(job_ad, attrs::REQUEST_PHI_MEMORY).unwrap_or(0);
        let exclusive = matches!(
            job_ad.get(attrs::REQUEST_EXCLUSIVE_PHI),
            Some(Value::Bool(true))
        );
        for slot in collector.node_slots(node) {
            let ad = collector.ad_mut(slot).expect("listed slot exists");
            if let Some(free) = int_attr(ad, attrs::PHI_FREE_MEMORY) {
                ad.insert(attrs::PHI_FREE_MEMORY, (free - mem).max(0));
            }
            if exclusive {
                if let Some(devs) = int_attr(ad, attrs::PHI_DEVICES_FREE) {
                    ad.insert(attrs::PHI_DEVICES_FREE, (devs - 1).max(0));
                }
            }
        }
    }
}

fn int_attr(ad: &phishare_classad::ClassAd, name: &str) -> Option<i64> {
    match ad.get(name) {
        Some(Value::Int(i)) => Some(*i),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attrs::{exclusive_job_ad, sharing_job_ad};
    use crate::startd::Startd;
    use phishare_sim::{SimDuration, SimTime};
    use phishare_workload::table1::AppKind;
    use phishare_workload::{JobProfile, JobSpec, Segment};

    fn spec(id: u64, mem: u64, threads: u32) -> JobSpec {
        JobSpec {
            id: JobId(id),
            name: format!("J{id}"),
            app: AppKind::KM,
            mem_req_mb: mem,
            thread_req: threads,
            actual_peak_mem_mb: mem,
            profile: JobProfile::new(vec![Segment::offload(
                threads,
                SimDuration::from_secs(1),
            )]),
        }
    }

    fn cluster(nodes: u32, slots: u32) -> Collector {
        let mut c = Collector::new();
        for n in 1..=nodes {
            Startd::new(n, slots, 1, 8192).advertise(&mut c, 7680, 1);
        }
        c
    }

    #[test]
    fn fifo_matching_fills_slots() {
        let mut q = JobQueue::new();
        for i in 0..3 {
            q.submit(JobId(i), sharing_job_ad(&spec(i, 1000, 60)), SimTime::ZERO)
                .unwrap();
        }
        let mut c = cluster(1, 2);
        let matches = Negotiator::default().negotiate(&mut q, &mut c);
        // Two slots → two matches; job 2 stays pending.
        assert_eq!(matches.len(), 2);
        assert_eq!(matches[0].job, JobId(0));
        assert_eq!(matches[1].job, JobId(1));
        assert_eq!(q.pending(), vec![JobId(2)]);
    }

    #[test]
    fn cycle_decrements_node_phi_memory() {
        let mut q = JobQueue::new();
        // Three 3000 MB jobs against one node with 7680 MB: only two fit in
        // one cycle even though the node has plenty of host slots.
        for i in 0..3 {
            q.submit(JobId(i), sharing_job_ad(&spec(i, 3000, 60)), SimTime::ZERO)
                .unwrap();
        }
        let mut c = cluster(1, 16);
        let matches = Negotiator::default().negotiate(&mut q, &mut c);
        assert_eq!(matches.len(), 2);
        let remaining = c
            .get(SlotId { node: 1, slot: 3 })
            .unwrap()
            .ad
            .get(attrs::PHI_FREE_MEMORY)
            .cloned();
        assert_eq!(remaining, Some(Value::Int(7680 - 6000)));
    }

    #[test]
    fn exclusive_jobs_claim_whole_cards() {
        let mut q = JobQueue::new();
        for i in 0..2 {
            q.submit(JobId(i), exclusive_job_ad(&spec(i, 1000, 240)), SimTime::ZERO)
                .unwrap();
        }
        let mut c = cluster(1, 16); // one node, one Phi card
        let matches = Negotiator::default().negotiate(&mut q, &mut c);
        // One card → one exclusive job per cycle, regardless of host slots.
        assert_eq!(matches.len(), 1);
        assert_eq!(q.pending(), vec![JobId(1)]);
    }

    #[test]
    fn matches_spread_across_nodes() {
        let mut q = JobQueue::new();
        for i in 0..2 {
            q.submit(JobId(i), exclusive_job_ad(&spec(i, 1000, 240)), SimTime::ZERO)
                .unwrap();
        }
        let mut c = cluster(2, 1);
        let matches = Negotiator::default().negotiate(&mut q, &mut c);
        assert_eq!(matches.len(), 2);
        assert_ne!(matches[0].slot.node, matches[1].slot.node);
    }

    #[test]
    fn pinned_job_goes_to_its_slot_only() {
        let mut q = JobQueue::new();
        q.submit(JobId(0), sharing_job_ad(&spec(0, 1000, 60)), SimTime::ZERO)
            .unwrap();
        q.qedit_expr(JobId(0), "Requirements", &attrs::pin_requirements("slot2@node3"))
            .unwrap();
        let mut c = cluster(4, 4);
        let matches = Negotiator::default().negotiate(&mut q, &mut c);
        assert_eq!(matches.len(), 1);
        assert_eq!(matches[0].slot, SlotId { node: 3, slot: 2 });
    }

    #[test]
    fn no_candidates_leaves_job_pending() {
        let mut q = JobQueue::new();
        q.submit(JobId(0), sharing_job_ad(&spec(0, 9000, 60)), SimTime::ZERO)
            .unwrap(); // bigger than any card
        let mut c = cluster(2, 2);
        assert!(Negotiator::default().negotiate(&mut q, &mut c).is_empty());
        assert_eq!(q.pending(), vec![JobId(0)]);
    }

    #[test]
    fn cycle_stats_account_for_every_pending_job() {
        let mut q = JobQueue::new();
        for i in 0..5 {
            q.submit(JobId(i), sharing_job_ad(&spec(i, 1000, 60)), SimTime::ZERO)
                .unwrap();
        }
        let mut c = cluster(1, 3);
        let (matches, stats) = Negotiator::default().negotiate_with_stats(&mut q, &mut c);
        assert_eq!(stats.considered, 5);
        assert_eq!(stats.matched, matches.len());
        assert_eq!(stats.matched, 3); // three slots
        assert_eq!(stats.unmatched, 2);
        assert_eq!(stats.considered, stats.matched + stats.unmatched);
    }

    #[test]
    fn claimed_slots_are_skipped() {
        let mut q = JobQueue::new();
        for i in 0..2 {
            q.submit(JobId(i), sharing_job_ad(&spec(i, 100, 60)), SimTime::ZERO)
                .unwrap();
        }
        let mut c = cluster(1, 1);
        let first = Negotiator::default().negotiate(&mut q, &mut c);
        assert_eq!(first.len(), 1);
        // Slot still claimed: second cycle matches nothing.
        let second = Negotiator::default().negotiate(&mut q, &mut c);
        assert!(second.is_empty());
        // Release → job 1 matches.
        c.release(first[0].slot);
        let third = Negotiator::default().negotiate(&mut q, &mut c);
        assert_eq!(third.len(), 1);
        assert_eq!(third[0].job, JobId(1));
    }
}
