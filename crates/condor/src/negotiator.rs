//! The negotiator: periodic FIFO matchmaking cycles.
//!
//! "The central manager then initiates a negotiation cycle during which all
//! pending jobs are examined in FIFO order, and matched with machines.
//! Negotiation cycles are triggered periodically." (§II-D)
//!
//! The paper's scheduler interacts with this component only indirectly: it
//! qedits job `Requirements` and then *waits for the next cycle* — the
//! source of the integration overhead the paper observes on the high-skew
//! distribution (§V-B).
//!
//! # Match paths
//!
//! Three implementations produce bit-identical matches, stats, and
//! collector/queue effects; they differ only in how much work they avoid:
//!
//! * **Delta** ([`MatchPath::Delta`], the default) — incremental
//!   matchmaking. Jobs the previous cycle certified unmatched are only
//!   re-screened against slots *dirtied since* that certificate
//!   ([`Collector::dirty_since`]); per-cycle work tracks the mutation
//!   churn, not the (jobs × slots) cross product.
//! * **Full** ([`MatchPath::Full`]) — the compiled full-rematch fast path:
//!   every pending job re-screens the whole pool through the narrowest
//!   collector index its guards allow. Retained as the delta path's
//!   differential oracle.
//! * **Naive** ([`Negotiator::negotiate_naive_with_stats`]) — the original
//!   implementation, a full scan that re-parses `Requirements`/`Rank` for
//!   every (job, slot) pair. The benchmark baseline.
//!
//! # Why the delta path is exact
//!
//! The match predicate for a (job, slot) pair is a pure function of the job
//! ad, the slot ad, and the slot's claim flag — nothing else. Suppose a
//! cycle evaluated job J against the *entire* pool at collector sequence
//! `s` and found no admitting slot. At any later sequence, a slot can admit
//! J only if its ad changed after `s` — an unchanged unclaimed slot
//! re-evaluates to the same "reject", and claiming only removes candidates.
//! The collector stamps every ad mutation (including in-cycle resource
//! decrements — the predicate is not assumed monotone, a requirement may
//! want *less* of something) and slot release, so `dirty_since(s)` is a
//! superset of J's possible admitters. Screening just that set against the
//! full predicate is therefore exact, and when it finds nothing the cycle
//! re-certifies J at the current sequence ([`JobQueue::note_unmatched`]).
//!
//! Jobs without a standing certificate (fresh arrivals, qedited jobs,
//! hold/release round trips) are screened against the whole pool, exactly
//! like the full path.
//!
//! The cycle runs in three phases:
//!
//! 1. **index registration** (`&mut Collector`): every pending job's
//!    `>=`-shaped guards register their attribute with the collector's
//!    guard indexes (idempotent, capped), so phases 2–3 are pure reads plus
//!    the serial commit. This also resolves the well-known attributes once
//!    per cycle instead of per (job, slot) evaluation.
//! 2. **screen** (read-only): each pending job computes its best slot
//!    against the pre-cycle snapshot — certificate holders over their dirty
//!    set, the rest over the indexed pool. Jobs are independent here, so
//!    the screen shards across scoped threads (see below).
//! 3. **commit** (serial): jobs claim in FIFO order. A job whose screened
//!    winner is still valid (not claimed, not dirtied since the snapshot)
//!    only re-ranks slots dirtied *during* the cycle by earlier commits and
//!    takes the better of the two — the winner rule is a total order, so
//!    this combination equals a full re-evaluation. If the screened winner
//!    was invalidated (claimed or re-advertised mid-cycle), the job falls
//!    back to a full indexed rescan; if the screen found nothing, only the
//!    in-cycle dirty set can admit the job.
//!
//! # Sharding determinism
//!
//! Phase 2 is embarrassingly parallel: workers share `&JobQueue` and
//! `&Collector` (no interior mutability anywhere below them), each owns a
//! contiguous chunk of the pending list, and results merge back by job
//! index. Screening is a pure function of (job, snapshot), so the shard
//! count — [`Negotiator::with_shards`] or the `PHISHARE_NEGOTIATOR_SHARDS`
//! env override — cannot change any result, only wall-clock time. All
//! claims and resource decrements happen in the serial phase 3, which
//! remains the sole author of collector mutations; match order is FIFO by
//! construction.
//!
//! # Partitioned screen
//!
//! When the collector is partitioned ([`Collector::with_partitions`]), the
//! delta path swaps the job-sharded screen for a *partition-parallel* one:
//! each pending job first compiles a [`ScreenPlan`] — pin resolution,
//! guard-index selection, and the selectivity probe hoisted out of the
//! per-partition loop — and then every partition screens all jobs against
//! only its own slots (its dirty shard, its slice of the guard index, its
//! unclaimed slots). Certificate dirt is cached per partition as one
//! stamp-sorted vector and sliced per job by binary search. The
//! per-partition winners merge serially by the winner rule (highest rank,
//! ties to the lowest slot id) — a total order, so merging the partition
//! maxima equals evaluating the union, and the result is bit-identical to
//! the unpartitioned screen for any partition count. Partitions screen on
//! scoped threads when the machine has them (`PHISHARE_PARTITION_THREADS`
//! caps the fan-out); phase 3 stays serial either way.
//!
//! # Quiescent cycles
//!
//! A delta cycle whose every idle job holds a certificate at least as new
//! as the pool's newest dirtying mutation ([`Collector::max_watermark`])
//! is provably a no-op: each job would re-screen an empty dirty set,
//! re-certify at an unchanged sequence, and match nothing. With
//! [`Negotiator::with_quiescence`] enabled (the default) the delta path
//! detects this in O(1) — [`JobQueue::idle_cert_floor`] against the
//! watermark — and returns the cycle's exact stats without touching the
//! queue, the collector, or the pending list. The fast path fires only
//! when the executed cycle would have been state-identical, so results
//! remain bit-for-bit equal to [`MatchPath::Full`]; the `Full` path never
//! short-circuits and stays the differential oracle.

use crate::attrs;
use crate::collector::{Collector, SlotId};
use crate::queue::{JobQueue, QueuedJob};
use phishare_classad::ad::REQUIREMENTS;
use phishare_classad::compiled::GuardOp;
use phishare_classad::{eval, parse, ClassAd, CompiledReq, Value};
use phishare_sim::SimDuration;
use phishare_workload::JobId;
use serde::{Deserialize, Serialize};

/// Summary of one negotiation cycle (what the negotiator logs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CycleStats {
    /// Pending jobs examined (FIFO order).
    pub considered: usize,
    /// Jobs matched to a slot this cycle.
    pub matched: usize,
    /// Jobs left pending: no unclaimed slot satisfied the two-sided match.
    pub unmatched: usize,
}

/// A successful match produced by one cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Match {
    /// The matched job.
    pub job: JobId,
    /// The slot the job will run on.
    pub slot: SlotId,
}

/// Which negotiation implementation [`Negotiator::negotiate_with_stats`]
/// dispatches to. All paths produce identical results (module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum MatchPath {
    /// Incremental delta-driven matchmaking (the default).
    #[default]
    Delta,
    /// Full rematch of every pending job each cycle, through the compiled
    /// guard indexes. The delta path's differential oracle.
    Full,
}

impl std::str::FromStr for MatchPath {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "delta" => Ok(MatchPath::Delta),
            "full" => Ok(MatchPath::Full),
            other => Err(format!("unknown negotiation path '{other}' (delta|full)")),
        }
    }
}

/// Pending-job count below which the phase-2 screen stays serial — thread
/// spawn overhead dwarfs the work saved on small queues.
const PAR_SCREEN_MIN: usize = 32;

/// Cap on the default shard count (explicit overrides may exceed it).
const MAX_DEFAULT_SHARDS: usize = 8;

/// How many candidates the guard-index selectivity probe inspects per
/// index before choosing the narrowest (see [`pick_guard_index`]).
const SELECTIVITY_PROBE: usize = 33;

/// The matchmaking component of the central manager.
#[derive(Debug, Clone, Copy)]
pub struct Negotiator {
    /// Gap between negotiation cycles (HTCondor's `NEGOTIATOR_INTERVAL`,
    /// 60 s by default; the paper's overhead analysis hinges on this).
    pub interval: SimDuration,
    /// Which implementation [`Negotiator::negotiate_with_stats`] runs.
    pub path: MatchPath,
    /// Phase-2 shard count; `None` resolves via
    /// `PHISHARE_NEGOTIATOR_SHARDS` or the machine's parallelism.
    shards: Option<usize>,
    /// Whether the delta path may skip provably no-op cycles (module
    /// docs). Unobservable in results; off only to measure the skip.
    quiescence: bool,
}

impl Default for Negotiator {
    fn default() -> Self {
        Negotiator {
            interval: SimDuration::from_secs(60),
            path: MatchPath::default(),
            shards: None,
            quiescence: true,
        }
    }
}

impl Negotiator {
    /// Create a negotiator with the given cycle interval.
    pub fn new(interval: SimDuration) -> Self {
        Negotiator {
            interval,
            ..Negotiator::default()
        }
    }

    /// Select the negotiation implementation.
    pub fn with_path(self, path: MatchPath) -> Self {
        Negotiator { path, ..self }
    }

    /// Pin the phase-2 shard count (1 = serial screen). Results are
    /// shard-count independent; only wall-clock time changes.
    pub fn with_shards(self, shards: usize) -> Self {
        Negotiator {
            shards: Some(shards.max(1)),
            ..self
        }
    }

    /// Enable or disable the quiescent-cycle fast path (delta path only;
    /// on by default). Results are identical either way — disabling it
    /// exists so benchmarks can time the executed cycle.
    pub fn with_quiescence(self, quiescence: bool) -> Self {
        Negotiator { quiescence, ..self }
    }

    /// Whether a delta cycle right now would provably be a no-op: every
    /// idle job certified unmatched at or after the pool's newest dirtying
    /// mutation. O(1); exact (module docs).
    pub fn cycle_is_quiescent(queue: &JobQueue, collector: &Collector) -> bool {
        queue
            .idle_cert_floor()
            .is_some_and(|floor| collector.max_watermark() <= floor)
    }

    /// Job shards the P = 1 delta screen fans out over (the configured
    /// override, else [`default_shards`]). Benches record this in their
    /// committed knob blocks.
    pub fn shard_count(&self) -> usize {
        self.shards.unwrap_or_else(default_shards)
    }

    /// Run one negotiation cycle: examine pending jobs in FIFO order, match
    /// each against the unclaimed slots, claim matched slots and decrement
    /// the matched node's advertised Phi resources so the *same cycle*
    /// cannot overcommit them.
    pub fn negotiate(&self, queue: &mut JobQueue, collector: &mut Collector) -> Vec<Match> {
        self.negotiate_with_stats(queue, collector).0
    }

    /// [`Negotiator::negotiate`] plus the cycle's accounting, via the
    /// configured [`MatchPath`].
    pub fn negotiate_with_stats(
        &self,
        queue: &mut JobQueue,
        collector: &mut Collector,
    ) -> (Vec<Match>, CycleStats) {
        match self.path {
            MatchPath::Delta => self.negotiate_delta_with_stats(queue, collector),
            MatchPath::Full => self.negotiate_full_with_stats(queue, collector),
        }
    }

    /// The compiled full-rematch fast path (see module docs); it clones no
    /// ads and reuses one candidate buffer across all jobs of the cycle.
    pub fn negotiate_full_with_stats(
        &self,
        queue: &mut JobQueue,
        collector: &mut Collector,
    ) -> (Vec<Match>, CycleStats) {
        register_guard_indexes(queue, &queue.pending(), collector);
        let mut scratch: Vec<SlotId> = Vec::new();
        run_cycle(queue, collector, |job, collector, _| {
            best_slot(&job.ad, job.compiled(), collector, &mut scratch).map(|(_, slot)| slot)
        })
    }

    /// The incremental delta path (see module docs for the three phases
    /// and the exactness argument).
    pub fn negotiate_delta_with_stats(
        &self,
        queue: &mut JobQueue,
        collector: &mut Collector,
    ) -> (Vec<Match>, CycleStats) {
        // Quiescence fast path, checked before the pending list is even
        // materialized: when every idle certificate covers the newest
        // watermark, the executed cycle would re-screen empty dirty sets,
        // match nothing, and re-stamp each certificate at its unchanged
        // sequence — a pure no-op whose stats we can emit directly.
        if self.quiescence && Self::cycle_is_quiescent(queue, collector) {
            let idle = queue.idle_count();
            return (
                Vec::new(),
                CycleStats {
                    considered: idle,
                    matched: 0,
                    unmatched: idle,
                },
            );
        }
        let pending = queue.pending();
        // Phase 1: register guard indexes while we still hold `&mut`.
        register_guard_indexes(queue, &pending, collector);
        let s0 = collector.seq();
        // Phase 2: read-only screen against the pre-cycle snapshot —
        // partition-parallel when the collector is partitioned, job-sharded
        // otherwise (the P=1 path is byte-for-byte the pre-partition one).
        let screens = if collector.partitions() > 1 {
            screen_pending_partitioned(queue, &pending, collector)
        } else {
            screen_pending(queue, &pending, collector, self.shard_count())
        };
        // Phase 3: serial FIFO commit.
        let mut scratch: Vec<SlotId> = Vec::new();
        run_cycle(queue, collector, |job, collector, idx| {
            let choice = match screens[idx] {
                // Screened unmatched against the snapshot: only slots
                // dirtied by this cycle's earlier commits can admit.
                None => best_among(
                    &job.ad,
                    job.compiled(),
                    collector,
                    collector.dirty_since(s0),
                ),
                Some((rank0, winner)) => {
                    let valid = collector.get(winner).is_some_and(|s| !s.claimed)
                        && !collector.dirtied_after(winner, s0);
                    if valid {
                        // The snapshot winner still stands; only in-cycle
                        // dirty slots could beat it. Winner rule: higher
                        // rank, ties to the lowest slot id.
                        match best_among(
                            &job.ad,
                            job.compiled(),
                            collector,
                            collector.dirty_since(s0),
                        ) {
                            Some((r, s)) if r > rank0 || (r == rank0 && s < winner) => Some((r, s)),
                            _ => Some((rank0, winner)),
                        }
                    } else {
                        // Winner claimed or re-advertised mid-cycle; the
                        // snapshot's runner-up is unknown, so rescan.
                        best_slot(&job.ad, job.compiled(), collector, &mut scratch)
                    }
                }
            };
            choice.map(|(_, slot)| slot)
        })
    }

    /// The pre-optimization negotiation cycle, kept verbatim as the
    /// reference implementation: scan every unclaimed slot for every job
    /// and re-parse each expression per evaluation. Differential tests
    /// hold the fast path to byte-identical matches and stats against
    /// this; the negotiation benchmark reports the speedup over it.
    pub fn negotiate_naive_with_stats(
        &self,
        queue: &mut JobQueue,
        collector: &mut Collector,
    ) -> (Vec<Match>, CycleStats) {
        run_cycle(queue, collector, |job, collector, _| {
            let mut best: Option<(f64, SlotId)> = None;
            for slot in collector.unclaimed() {
                let status = collector.get(slot).expect("listed slot exists");
                if naive_matches(&job.ad, &status.ad) {
                    let rank = naive_rank(&job.ad, &status.ad);
                    let better = match best {
                        None => true,
                        // Higher rank wins; ties go to the lowest slot id so
                        // cycles are deterministic.
                        Some((r, s)) => rank > r || (rank == r && slot < s),
                    };
                    if better {
                        best = Some((rank, slot));
                    }
                }
            }
            best.map(|(_, slot)| slot)
        })
    }
}

/// The shared cycle driver: FIFO over pending jobs, delegating *selection*
/// to the match path and owning the commit — claim, state transition,
/// same-cycle resource decrement — plus the unmatched certificate. Every
/// path funnels through here, so commit semantics cannot drift.
fn run_cycle(
    queue: &mut JobQueue,
    collector: &mut Collector,
    mut select: impl FnMut(&QueuedJob, &Collector, usize) -> Option<SlotId>,
) -> (Vec<Match>, CycleStats) {
    let mut stats = CycleStats::default();
    let mut matches = Vec::new();
    for (idx, job_id) in queue.pending().into_iter().enumerate() {
        stats.considered += 1;
        // Select under an immutable borrow; copy out the commit parameters
        // so the mutations below need no clone of the ad.
        let decision = {
            let job = queue.get(job_id).expect("pending job exists");
            select(job, collector, idx).map(|slot| {
                (
                    slot,
                    int_attr(&job.ad, attrs::lc::REQUEST_PHI_MEMORY).unwrap_or(0),
                    matches!(
                        job.ad.get(attrs::lc::REQUEST_EXCLUSIVE_PHI),
                        Some(Value::Bool(true))
                    ),
                )
            })
        };
        match decision {
            Some((slot, mem, exclusive)) => {
                let claimed = collector.claim(slot);
                debug_assert!(claimed, "selected slot failed to claim");
                queue
                    .set_matched(job_id, slot)
                    .expect("pending job transitions to matched");
                commit_phi_resources(collector, slot.node, mem, exclusive);
                matches.push(Match { job: job_id, slot });
                stats.matched += 1;
            }
            None => {
                stats.unmatched += 1;
                // The path just established that no slot in the current
                // pool admits this job — a whole-pool certificate the next
                // delta cycle builds on.
                queue.note_unmatched(job_id, collector.seq());
            }
        }
    }
    (matches, stats)
}

/// Ensure a guard index exists for every `>=`/`>`-shaped guard attribute of
/// the pending jobs. Idempotent and capped (the collector refuses past
/// [`crate::collector::MAX_ATTR_INDEXES`]; those guards fall back to the
/// unclaimed scan); steady state is a handful of string compares per job.
fn register_guard_indexes(queue: &JobQueue, pending: &[JobId], collector: &mut Collector) {
    for &id in pending {
        let req = queue.get(id).expect("pending job exists").compiled();
        for g in req.guards() {
            if matches!(g.op, GuardOp::Ge | GuardOp::Gt) {
                collector.ensure_attr_index(&g.attr);
            }
        }
    }
}

/// Phase-2 screen of every pending job against the current (frozen)
/// collector snapshot, sharded across scoped threads when the queue is
/// long enough. Returns one entry per pending job, merged by index —
/// bit-identical to the serial screen (module docs).
fn screen_pending(
    queue: &JobQueue,
    pending: &[JobId],
    collector: &Collector,
    shards: usize,
) -> Vec<Option<(f64, SlotId)>> {
    let screen_chunk = |ids: &[JobId]| -> Vec<Option<(f64, SlotId)>> {
        let mut scratch: Vec<SlotId> = Vec::new();
        ids.iter()
            .map(|&id| {
                let job = queue.get(id).expect("pending job exists");
                screen_job(job, collector, &mut scratch)
            })
            .collect()
    };

    if shards <= 1 || pending.len() < PAR_SCREEN_MIN {
        return screen_chunk(pending);
    }
    let chunk = pending.len().div_ceil(shards);
    let mut screens = Vec::with_capacity(pending.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = pending
            .chunks(chunk)
            .map(|ids| scope.spawn(move || screen_chunk(ids)))
            .collect();
        for handle in handles {
            screens.extend(handle.join().expect("screen shard panicked"));
        }
    });
    screens
}

/// One job's per-cycle screening recipe, compiled once and reused by every
/// partition: pin resolution, guard-index selection, and the selectivity
/// probe are hoisted here instead of re-running per (job, partition).
#[derive(Debug, Clone)]
enum ScreenPlan {
    /// Certificate holder: re-rank only slots dirtied after this sequence.
    Dirty(u64),
    /// No candidates anywhere: an impossible requirement, or a certificate
    /// no dirtying mutation has outrun.
    Never,
    /// Screened once globally at plan-compilation time: a stale
    /// certificate holder whose own prefilter is provably narrow (see
    /// [`stale_narrow_plan`]) gains nothing from partition fan-out, so its
    /// winner is computed up front and every partition skips it.
    Resolved(Option<(f64, SlotId)>),
    /// Pinned to a slot name (resolved once; `None` = no such slot).
    Name(Option<SlotId>),
    /// Pinned to a machine; its slots, resolved once.
    Machine(Box<[SlotId]>),
    /// Narrowest admitting guard index and bound, probed once.
    Guard(usize, f64),
    /// No narrowing applies: unclaimed scan.
    Scan,
}

/// Compile one certificate-less job's [`ScreenPlan`], mirroring
/// [`best_slot`]'s pre-screen order exactly.
fn plan_job(req: &CompiledReq, collector: &Collector) -> ScreenPlan {
    if req.is_never() {
        ScreenPlan::Never
    } else if let Some(name) = req.pin(attrs::lc::NAME) {
        ScreenPlan::Name(collector.slot_by_name(name))
    } else if let Some(machine) = req.pin(attrs::lc::MACHINE) {
        ScreenPlan::Machine(collector.slots_on_machine(machine).into())
    } else if let Some((idx, bound)) = pick_guard_index(req, collector) {
        ScreenPlan::Guard(idx, bound)
    } else {
        ScreenPlan::Scan
    }
}

/// Phase-2 screen over a partitioned collector: every partition screens
/// all pending jobs against only its own slots, then the per-partition
/// winners merge serially by the winner rule. Bit-identical to
/// [`screen_pending`] for any partition count (module docs): each plan's
/// per-partition candidate sets union to exactly the serial candidate set,
/// and the winner rule is a total order, so the merge of partition maxima
/// is the global maximum.
fn screen_pending_partitioned(
    queue: &JobQueue,
    pending: &[JobId],
    collector: &Collector,
) -> Vec<Option<(f64, SlotId)>> {
    let plans: Vec<ScreenPlan> = pending
        .iter()
        .map(|&id| {
            let job = queue.get(id).expect("pending job exists");
            match job.eval_seq() {
                // A certificate no dirt has outrun still covers the pool.
                Some(seq) if collector.max_watermark() <= seq => ScreenPlan::Never,
                // Prefer the job's own narrow prefilter over the dirty walk
                // when it is provably smaller — and since it is at most a
                // handful of slots, screen it right here against the global
                // indexes instead of fanning it out to every partition.
                Some(seq) => match stale_narrow_plan(job.compiled(), collector) {
                    Some(plan) => ScreenPlan::Resolved(screen_narrow(job, collector, &plan)),
                    None => ScreenPlan::Dirty(seq),
                },
                None => plan_job(job.compiled(), collector),
            }
        })
        .collect();
    // The oldest certificate bounds the per-partition dirty cache.
    let oldest_cert = plans
        .iter()
        .filter_map(|p| match p {
            ScreenPlan::Dirty(seq) => Some(*seq),
            _ => None,
        })
        .min();

    let screen_partition = |pi: usize| -> Vec<Option<(f64, SlotId)>> {
        // Per-cycle dirty cache: this partition's dirt since the oldest
        // certificate, stamp-sorted; each job slices it by binary search.
        let dirt: Vec<(u64, SlotId)> = match oldest_cert {
            Some(seq) => collector.partition_dirty_entries_since(pi, seq).collect(),
            None => Vec::new(),
        };
        pending
            .iter()
            .zip(&plans)
            .map(|(&id, plan)| {
                let job = queue.get(id).expect("pending job exists");
                match plan {
                    ScreenPlan::Dirty(seq) => {
                        let start = dirt.partition_point(|&(stamp, _)| stamp <= *seq);
                        best_among(
                            &job.ad,
                            job.compiled(),
                            collector,
                            dirt[start..].iter().map(|&(_, slot)| slot),
                        )
                    }
                    ScreenPlan::Never => None,
                    // Already screened globally at compilation; the merge
                    // seeds these directly.
                    ScreenPlan::Resolved(_) => None,
                    ScreenPlan::Name(slot) => best_among(
                        &job.ad,
                        job.compiled(),
                        collector,
                        slot.filter(|s| collector.part_of(s.node) == pi),
                    ),
                    ScreenPlan::Machine(slots) => best_among(
                        &job.ad,
                        job.compiled(),
                        collector,
                        slots
                            .iter()
                            .copied()
                            .filter(|s| collector.part_of(s.node) == pi),
                    ),
                    ScreenPlan::Guard(idx, bound) => best_among(
                        &job.ad,
                        job.compiled(),
                        collector,
                        collector.partition_indexed_range_at_least(pi, *idx, *bound),
                    ),
                    ScreenPlan::Scan => best_among(
                        &job.ad,
                        job.compiled(),
                        collector,
                        collector.partition_unclaimed_iter(pi),
                    ),
                }
            })
            .collect()
    };

    let parts = collector.partitions();
    let threads = crate::collector::partition_threads(parts);
    let mut per_part: Vec<Vec<Option<(f64, SlotId)>>> = Vec::with_capacity(parts);
    if threads > 1 && !pending.is_empty() {
        let screen_partition = &screen_partition;
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..parts)
                .map(|pi| scope.spawn(move || screen_partition(pi)))
                .collect();
            for handle in handles {
                per_part.push(handle.join().expect("partition screen panicked"));
            }
        });
    } else {
        per_part.extend((0..parts).map(screen_partition));
    }

    // Serial pre-commit merge: winner rule across partitions, per job;
    // compilation-resolved screens seed their slots directly.
    let mut screens: Vec<Option<(f64, SlotId)>> = plans
        .iter()
        .map(|plan| match plan {
            ScreenPlan::Resolved(r) => *r,
            _ => None,
        })
        .collect();
    for part in per_part {
        for (best, merged) in part.into_iter().zip(screens.iter_mut()) {
            *merged = match (*merged, best) {
                (None, b) => b,
                (a, None) => a,
                (Some((ra, sa)), Some((rb, sb))) => {
                    if rb > ra || (rb == ra && sb < sa) {
                        Some((rb, sb))
                    } else {
                        Some((ra, sa))
                    }
                }
            };
        }
    }
    screens
}

/// One job's screen: certificate holders re-rank only the slots dirtied
/// since their certificate — or their own narrowing prefilter when that is
/// provably smaller (see [`stale_narrow_plan`]); everyone else scans the
/// pool through the narrowest index.
fn screen_job(
    job: &QueuedJob,
    collector: &Collector,
    scratch: &mut Vec<SlotId>,
) -> Option<(f64, SlotId)> {
    match job.eval_seq() {
        Some(seq) => {
            if collector.max_watermark() <= seq {
                // Nothing has been dirtied since the certificate; it still
                // covers the whole pool.
                return None;
            }
            match stale_narrow_plan(job.compiled(), collector) {
                Some(plan) => screen_narrow(job, collector, &plan),
                None => best_among(
                    &job.ad,
                    job.compiled(),
                    collector,
                    collector.dirty_since(seq),
                ),
            }
        }
        None => best_slot(&job.ad, job.compiled(), collector, scratch),
    }
}

/// Execute one of [`stale_narrow_plan`]'s plans against the *global*
/// collector indexes — at most a handful of candidates by construction.
fn screen_narrow(
    job: &QueuedJob,
    collector: &Collector,
    plan: &ScreenPlan,
) -> Option<(f64, SlotId)> {
    match plan {
        ScreenPlan::Never => None,
        ScreenPlan::Name(slot) => best_among(&job.ad, job.compiled(), collector, *slot),
        ScreenPlan::Machine(slots) => {
            best_among(&job.ad, job.compiled(), collector, slots.iter().copied())
        }
        ScreenPlan::Guard(idx, bound) => best_among(
            &job.ad,
            job.compiled(),
            collector,
            collector.indexed_range_at_least(*idx, *bound),
        ),
        ScreenPlan::Dirty(_) | ScreenPlan::Scan | ScreenPlan::Resolved(_) => {
            unreachable!("stale_narrow_plan only produces narrow plans")
        }
    }
}

/// A stale certificate holder's candidates are contained in *both* the
/// dirt since its certificate and its own pre-screen superset (pin, guard
/// range) — the certificate rules out every slot unchanged since `seq`,
/// the prefilter rules out every slot the requirement cannot admit, and
/// [`best_among`] is enumeration-independent over any superset of the true
/// admitters. This returns the job's narrowing plan when it is *provably*
/// no wider than the selectivity probe (a pin, an impossible requirement,
/// or a guard range of fewer than [`SELECTIVITY_PROBE`] slots), so
/// re-certifying e.g. a 50 GB memory request against a pool whose index
/// tops out at 8 GB costs O(log pool) instead of one evaluation per dirty
/// slot. `None` means the plan is unbounded — walk the dirt instead.
fn stale_narrow_plan(req: &CompiledReq, collector: &Collector) -> Option<ScreenPlan> {
    if req.is_never() {
        Some(ScreenPlan::Never)
    } else if let Some(name) = req.pin(attrs::lc::NAME) {
        Some(ScreenPlan::Name(collector.slot_by_name(name)))
    } else if let Some(machine) = req.pin(attrs::lc::MACHINE) {
        Some(ScreenPlan::Machine(
            collector.slots_on_machine(machine).into(),
        ))
    } else {
        let (idx, bound) = pick_guard_index(req, collector)?;
        let narrow = collector
            .indexed_range_at_least(idx, bound)
            .take(SELECTIVITY_PROBE)
            .count()
            < SELECTIVITY_PROBE;
        narrow.then_some(ScreenPlan::Guard(idx, bound))
    }
}

/// Find the best slot for one job over the whole pool, using the compiled
/// requirement to pick the narrowest collector index. `scratch` is
/// caller-owned, reused across jobs to avoid per-job allocation.
fn best_slot(
    job_ad: &ClassAd,
    req: &CompiledReq,
    collector: &Collector,
    scratch: &mut Vec<SlotId>,
) -> Option<(f64, SlotId)> {
    if req.is_never() {
        return None;
    }

    // Pre-screen: pick the narrowest index the compiled guards allow. Each
    // source yields a superset of the job's true matches among unclaimed
    // slots (claimed slots are filtered in `best_among`), so the full
    // re-check keeps the result exact.
    scratch.clear();
    if let Some(name) = req.pin(attrs::lc::NAME) {
        scratch.extend(collector.slot_by_name(name));
    } else if let Some(machine) = req.pin(attrs::lc::MACHINE) {
        scratch.extend_from_slice(collector.slots_on_machine(machine));
    } else if let Some((idx, bound)) = pick_guard_index(req, collector) {
        scratch.extend(collector.indexed_range_at_least(idx, bound));
    } else {
        scratch.extend(collector.unclaimed_iter());
    }
    best_among(job_ad, req, collector, scratch.iter().copied())
}

/// The narrowest registered guard index covering one of the requirement's
/// `>=`/`>` guards, with its bound, or `None` when no guard has an index.
///
/// Selectivity is estimated by walking at most [`SELECTIVITY_PROBE`]
/// candidates of each index's range — enough to tell "a handful" from
/// "basically everything" without paying O(pool) per job. Ties keep the
/// first guard in requirement order; an empty range short-circuits (the
/// guard alone proves no slot matches). Deterministic: depends only on
/// the requirement and the snapshot.
fn pick_guard_index(req: &CompiledReq, collector: &Collector) -> Option<(usize, f64)> {
    let mut best: Option<(usize, (usize, f64))> = None;
    let mut seen: Vec<&str> = Vec::new();
    for g in req.guards() {
        if !matches!(g.op, GuardOp::Ge | GuardOp::Gt) || seen.contains(&g.attr.as_str()) {
            continue;
        }
        seen.push(&g.attr);
        let Some(idx) = collector.attr_index(&g.attr) else {
            continue;
        };
        // The strongest bound over all of this attribute's guards.
        let bound = req.lower_bound(&g.attr).unwrap_or(g.bound);
        let probe = collector
            .indexed_range_at_least(idx, bound)
            .take(SELECTIVITY_PROBE)
            .count();
        if probe == 0 {
            return Some((idx, bound));
        }
        if best.is_none_or(|(count, _)| probe < count) {
            best = Some((probe, (idx, bound)));
        }
    }
    best.map(|(_, found)| found)
}

/// Rank `candidates` against the full two-sided match predicate and return
/// the winner: highest rank, ties to the lowest slot id. The rule is a
/// total order over admitted slots, so the result is independent of the
/// candidate enumeration order — any superset of the true admitters yields
/// the same winner.
fn best_among(
    job_ad: &ClassAd,
    req: &CompiledReq,
    collector: &Collector,
    candidates: impl IntoIterator<Item = SlotId>,
) -> Option<(f64, SlotId)> {
    if req.is_never() {
        return None;
    }
    let rank_expr = job_ad.parsed_expr(attrs::lc::RANK);
    let mut best: Option<(f64, SlotId)> = None;
    for slot in candidates {
        let status = collector.get(slot).expect("candidate slot exists");
        if status.claimed || !req.matches_target(job_ad, &status.ad) {
            continue;
        }
        // Machine-side half of the two-sided match. Most slot ads carry no
        // Requirements (the meta flag is precomputed), so this usually
        // costs nothing.
        if status.meta().has_requirements() && !status.ad.requirements_satisfied(job_ad) {
            continue;
        }
        let rank = match rank_expr {
            None => 0.0,
            Some(e) => eval(e, job_ad, Some(&status.ad)).as_f64().unwrap_or(0.0),
        };
        let better = match best {
            None => true,
            Some((r, s)) => rank > r || (rank == r && slot < s),
        };
        if better {
            best = Some((rank, slot));
        }
    }
    best
}

/// Resolve the phase-2 shard count: the `PHISHARE_NEGOTIATOR_SHARDS` env
/// override when set to a positive integer, else the machine's available
/// parallelism capped at [`MAX_DEFAULT_SHARDS`].
fn default_shards() -> usize {
    let raw = std::env::var("PHISHARE_NEGOTIATOR_SHARDS").ok();
    shards_override(raw.as_deref()).unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|n| n.get().min(MAX_DEFAULT_SHARDS))
            .unwrap_or(1)
    })
}

/// Parse a shard-count override (the value of `PHISHARE_NEGOTIATOR_SHARDS`).
/// `None` for absent, non-numeric, or non-positive values — the caller
/// falls back to machine sizing. Injectable so the parse rules are testable
/// without mutating process-global environment state.
fn shards_override(raw: Option<&str>) -> Option<usize> {
    raw.and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
}

/// Decrement the node-level Phi attributes on every slot ad of `node` to
/// reflect a new placement for the remainder of this cycle. Routed through
/// [`Collector::set_int_attr_at`] so the guard indexes stay coherent — a
/// later job in the *same cycle* sees the reduced capacity in its range
/// query — and the slots are stamped dirty for the delta path. The two
/// well-known attributes live at fixed pre-registered index positions
/// ([`Collector::FREE_MEM_INDEX`], [`Collector::DEVICES_FREE_INDEX`]), so
/// the commit pays no per-write attribute-name resolution.
fn commit_phi_resources(collector: &mut Collector, node: u32, mem: i64, exclusive: bool) {
    for slot in collector.node_slots(node) {
        let status = collector.get(slot).expect("listed slot exists");
        let free = int_attr(&status.ad, attrs::lc::PHI_FREE_MEMORY);
        let devs = if exclusive {
            int_attr(&status.ad, attrs::lc::PHI_DEVICES_FREE)
        } else {
            None
        };
        if let Some(free) = free {
            collector.set_int_attr_at(
                slot,
                Collector::FREE_MEM_INDEX,
                attrs::lc::PHI_FREE_MEMORY,
                (free - mem).max(0),
            );
        }
        if let Some(devs) = devs {
            collector.set_int_attr_at(
                slot,
                Collector::DEVICES_FREE_INDEX,
                attrs::lc::PHI_DEVICES_FREE,
                (devs - 1).max(0),
            );
        }
    }
}

fn int_attr(ad: &ClassAd, name: &str) -> Option<i64> {
    match ad.get(name) {
        Some(Value::Int(i)) => Some(*i),
        _ => None,
    }
}

// --- Naive evaluation helpers -----------------------------------------
//
// These deliberately re-parse the stored expression source on every call,
// reproducing the pre-optimization cost model (the ClassAd layer itself now
// caches parsed ASTs, which would otherwise quietly speed up the baseline).

fn naive_requirements_satisfied(my: &ClassAd, target: &ClassAd) -> bool {
    match my.get_expr(REQUIREMENTS) {
        None => true,
        Some(src) => {
            let expr = parse(src).expect("stored expression parses");
            eval(&expr, my, Some(target)).is_true()
        }
    }
}

fn naive_matches(job: &ClassAd, machine: &ClassAd) -> bool {
    naive_requirements_satisfied(job, machine) && naive_requirements_satisfied(machine, job)
}

fn naive_rank(job: &ClassAd, machine: &ClassAd) -> f64 {
    match job.get_expr(attrs::lc::RANK) {
        None => 0.0,
        Some(src) => {
            let expr = parse(src).expect("stored expression parses");
            eval(&expr, job, Some(machine)).as_f64().unwrap_or(0.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attrs::{exclusive_job_ad, sharing_job_ad};
    use crate::startd::Startd;
    use phishare_sim::{SimDuration, SimTime};
    use phishare_workload::table1::AppKind;
    use phishare_workload::{JobProfile, JobSpec, Segment};

    fn spec(id: u64, mem: u64, threads: u32) -> JobSpec {
        JobSpec {
            id: JobId(id),
            name: format!("J{id}"),
            app: AppKind::KM,
            mem_req_mb: mem,
            thread_req: threads,
            actual_peak_mem_mb: mem,
            profile: JobProfile::new(vec![Segment::offload(threads, SimDuration::from_secs(1))]),
        }
    }

    fn cluster(nodes: u32, slots: u32) -> Collector {
        cluster_partitioned(nodes, slots, 1)
    }

    fn cluster_partitioned(nodes: u32, slots: u32, parts: usize) -> Collector {
        let mut c = Collector::with_partitions(parts);
        for n in 1..=nodes {
            Startd::new(n, slots, 1, 8192).advertise(&mut c, 7680, 1);
        }
        c
    }

    #[test]
    fn fifo_matching_fills_slots() {
        let mut q = JobQueue::new();
        for i in 0..3 {
            q.submit(JobId(i), sharing_job_ad(&spec(i, 1000, 60)), SimTime::ZERO)
                .unwrap();
        }
        let mut c = cluster(1, 2);
        let matches = Negotiator::default().negotiate(&mut q, &mut c);
        // Two slots → two matches; job 2 stays pending.
        assert_eq!(matches.len(), 2);
        assert_eq!(matches[0].job, JobId(0));
        assert_eq!(matches[1].job, JobId(1));
        assert_eq!(q.pending(), vec![JobId(2)]);
    }

    #[test]
    fn cycle_decrements_node_phi_memory() {
        let mut q = JobQueue::new();
        // Three 3000 MB jobs against one node with 7680 MB: only two fit in
        // one cycle even though the node has plenty of host slots.
        for i in 0..3 {
            q.submit(JobId(i), sharing_job_ad(&spec(i, 3000, 60)), SimTime::ZERO)
                .unwrap();
        }
        let mut c = cluster(1, 16);
        let matches = Negotiator::default().negotiate(&mut q, &mut c);
        assert_eq!(matches.len(), 2);
        let remaining = c
            .get(SlotId { node: 1, slot: 3 })
            .unwrap()
            .ad
            .get(attrs::PHI_FREE_MEMORY)
            .cloned();
        assert_eq!(remaining, Some(Value::Int(7680 - 6000)));
    }

    #[test]
    fn exclusive_jobs_claim_whole_cards() {
        let mut q = JobQueue::new();
        for i in 0..2 {
            q.submit(
                JobId(i),
                exclusive_job_ad(&spec(i, 1000, 240)),
                SimTime::ZERO,
            )
            .unwrap();
        }
        let mut c = cluster(1, 16); // one node, one Phi card
        let matches = Negotiator::default().negotiate(&mut q, &mut c);
        // One card → one exclusive job per cycle, regardless of host slots.
        assert_eq!(matches.len(), 1);
        assert_eq!(q.pending(), vec![JobId(1)]);
    }

    #[test]
    fn matches_spread_across_nodes() {
        let mut q = JobQueue::new();
        for i in 0..2 {
            q.submit(
                JobId(i),
                exclusive_job_ad(&spec(i, 1000, 240)),
                SimTime::ZERO,
            )
            .unwrap();
        }
        let mut c = cluster(2, 1);
        let matches = Negotiator::default().negotiate(&mut q, &mut c);
        assert_eq!(matches.len(), 2);
        assert_ne!(matches[0].slot.node, matches[1].slot.node);
    }

    #[test]
    fn pinned_job_goes_to_its_slot_only() {
        let mut q = JobQueue::new();
        q.submit(JobId(0), sharing_job_ad(&spec(0, 1000, 60)), SimTime::ZERO)
            .unwrap();
        q.qedit_expr(
            JobId(0),
            "Requirements",
            &attrs::pin_requirements("slot2@node3"),
        )
        .unwrap();
        let mut c = cluster(4, 4);
        let matches = Negotiator::default().negotiate(&mut q, &mut c);
        assert_eq!(matches.len(), 1);
        assert_eq!(matches[0].slot, SlotId { node: 3, slot: 2 });
    }

    #[test]
    fn node_pinned_job_stays_on_its_node() {
        let mut q = JobQueue::new();
        q.submit(JobId(0), sharing_job_ad(&spec(0, 1000, 60)), SimTime::ZERO)
            .unwrap();
        q.qedit_expr(JobId(0), "Requirements", &attrs::pin_to_node("node2"))
            .unwrap();
        let mut c = cluster(4, 4);
        let matches = Negotiator::default().negotiate(&mut q, &mut c);
        assert_eq!(matches.len(), 1);
        assert_eq!(matches[0].slot.node, 2);
    }

    #[test]
    fn no_candidates_leaves_job_pending() {
        let mut q = JobQueue::new();
        q.submit(JobId(0), sharing_job_ad(&spec(0, 9000, 60)), SimTime::ZERO)
            .unwrap(); // bigger than any card
        let mut c = cluster(2, 2);
        assert!(Negotiator::default().negotiate(&mut q, &mut c).is_empty());
        assert_eq!(q.pending(), vec![JobId(0)]);
    }

    #[test]
    fn cycle_stats_account_for_every_pending_job() {
        let mut q = JobQueue::new();
        for i in 0..5 {
            q.submit(JobId(i), sharing_job_ad(&spec(i, 1000, 60)), SimTime::ZERO)
                .unwrap();
        }
        let mut c = cluster(1, 3);
        let (matches, stats) = Negotiator::default().negotiate_with_stats(&mut q, &mut c);
        assert_eq!(stats.considered, 5);
        assert_eq!(stats.matched, matches.len());
        assert_eq!(stats.matched, 3); // three slots
        assert_eq!(stats.unmatched, 2);
        assert_eq!(stats.considered, stats.matched + stats.unmatched);
    }

    #[test]
    fn claimed_slots_are_skipped() {
        let mut q = JobQueue::new();
        for i in 0..2 {
            q.submit(JobId(i), sharing_job_ad(&spec(i, 100, 60)), SimTime::ZERO)
                .unwrap();
        }
        let mut c = cluster(1, 1);
        let first = Negotiator::default().negotiate(&mut q, &mut c);
        assert_eq!(first.len(), 1);
        // Slot still claimed: second cycle matches nothing.
        let second = Negotiator::default().negotiate(&mut q, &mut c);
        assert!(second.is_empty());
        // Release → job 1 matches.
        c.release(first[0].slot);
        let third = Negotiator::default().negotiate(&mut q, &mut c);
        assert_eq!(third.len(), 1);
        assert_eq!(third[0].job, JobId(1));
    }

    #[test]
    fn unmatched_jobs_gain_certificates_the_next_cycle_honors() {
        let mut q = JobQueue::new();
        for i in 0..2 {
            q.submit(JobId(i), sharing_job_ad(&spec(i, 3000, 60)), SimTime::ZERO)
                .unwrap();
        }
        let mut c = cluster(1, 1);
        let n = Negotiator::default();
        assert_eq!(n.negotiate(&mut q, &mut c).len(), 1);
        // Job 1 is certified unmatched at the post-cycle sequence.
        let seq = q.get(JobId(1)).unwrap().eval_seq().unwrap();
        assert_eq!(seq, c.seq());
        // A no-churn cycle re-screens only the (empty) dirty set and keeps
        // the certificate standing.
        assert!(n.negotiate(&mut q, &mut c).is_empty());
        assert_eq!(q.get(JobId(1)).unwrap().eval_seq(), Some(seq));
        // A release dirties the slot; the next delta cycle sees it.
        c.release(SlotId { node: 1, slot: 1 });
        c.refresh_phi_availability(SlotId { node: 1, slot: 1 }, 7680, 1);
        let third = n.negotiate(&mut q, &mut c);
        assert_eq!(third.len(), 1);
        assert_eq!(third[0].job, JobId(1));
    }

    #[test]
    fn all_paths_agree_on_a_mixed_cycle() {
        let build = || {
            let mut q = JobQueue::new();
            q.submit(JobId(0), sharing_job_ad(&spec(0, 3000, 60)), SimTime::ZERO)
                .unwrap();
            q.submit(
                JobId(1),
                exclusive_job_ad(&spec(1, 1000, 240)),
                SimTime::ZERO,
            )
            .unwrap();
            q.submit(JobId(2), sharing_job_ad(&spec(2, 9000, 60)), SimTime::ZERO)
                .unwrap();
            q.submit(JobId(3), sharing_job_ad(&spec(3, 500, 60)), SimTime::ZERO)
                .unwrap();
            q.qedit_expr(
                JobId(3),
                "Requirements",
                &attrs::pin_requirements("slot1@node2"),
            )
            .unwrap();
            (q, cluster(3, 2))
        };
        let (mut q_delta, mut c_delta) = build();
        let (mut q_full, mut c_full) = build();
        let (mut q_naive, mut c_naive) = build();
        let n = Negotiator::default();
        let delta = n.negotiate_delta_with_stats(&mut q_delta, &mut c_delta);
        let full = n.negotiate_full_with_stats(&mut q_full, &mut c_full);
        let naive = n.negotiate_naive_with_stats(&mut q_naive, &mut c_naive);
        assert_eq!(delta, full);
        assert_eq!(full, naive);
        assert_eq!(c_delta, c_full);
        assert_eq!(c_full, c_naive);
        assert_eq!(q_delta.pending(), q_naive.pending());
    }

    #[test]
    fn delta_tracks_full_across_churny_cycles() {
        let n = Negotiator::default();
        let mut q_delta = JobQueue::new();
        let mut q_full = JobQueue::new();
        for (i, mem) in [(0u64, 3000u64), (1, 3000), (2, 3000), (3, 9000)] {
            q_delta
                .submit(JobId(i), sharing_job_ad(&spec(i, mem, 60)), SimTime::ZERO)
                .unwrap();
            q_full
                .submit(JobId(i), sharing_job_ad(&spec(i, mem, 60)), SimTime::ZERO)
                .unwrap();
        }
        let mut c_delta = cluster(2, 2);
        let mut c_full = cluster(2, 2);
        for round in 0..6 {
            // Churn between cycles, applied identically to both twins:
            // releases, refreshes, node loss and rejoin.
            for c in [&mut c_delta, &mut c_full] {
                match round {
                    1 => {
                        for slot in c.node_slots(1) {
                            c.release(slot);
                            c.refresh_phi_availability(slot, 7680, 1);
                        }
                    }
                    2 => {
                        c.invalidate_node(2);
                    }
                    3 => {
                        Startd::new(2, 2, 1, 8192).advertise(c, 7680, 1);
                    }
                    4 => {
                        for slot in c.node_slots(2) {
                            c.refresh_phi_availability(slot, 9001, 1);
                        }
                    }
                    _ => {}
                }
            }
            if round == 4 {
                // A qedit drops the certificate on both sides.
                for q in [&mut q_delta, &mut q_full] {
                    q.qedit_value(JobId(3), attrs::REQUEST_PHI_MEMORY, 8500u64)
                        .unwrap();
                }
            }
            let delta = n.negotiate_delta_with_stats(&mut q_delta, &mut c_delta);
            let full = n.negotiate_full_with_stats(&mut q_full, &mut c_full);
            assert_eq!(delta, full, "round {round}");
            assert_eq!(c_delta, c_full, "round {round}");
            assert_eq!(q_delta.pending(), q_full.pending(), "round {round}");
        }
        // The churn actually exercised the interesting rounds: the widened
        // node-2 capacity admitted the qedited big job.
        assert!(q_delta.pending().is_empty());
    }

    #[test]
    fn sharded_and_serial_screens_are_bit_identical() {
        let build = || {
            let mut q = JobQueue::new();
            for i in 0..64 {
                let ad = if i % 3 == 0 {
                    exclusive_job_ad(&spec(i, 1000, 240))
                } else {
                    sharing_job_ad(&spec(i, 500 + (i % 7) * 900, 60))
                };
                q.submit(JobId(i), ad, SimTime::ZERO).unwrap();
            }
            (q, cluster(6, 3))
        };
        let (mut q_serial, mut c_serial) = build();
        let (mut q_sharded, mut c_sharded) = build();
        let serial = Negotiator::default()
            .with_shards(1)
            .negotiate_delta_with_stats(&mut q_serial, &mut c_serial);
        let sharded = Negotiator::default()
            .with_shards(5)
            .negotiate_delta_with_stats(&mut q_sharded, &mut c_sharded);
        assert_eq!(serial, sharded);
        assert_eq!(c_serial, c_sharded);
        assert_eq!(q_serial.pending(), q_sharded.pending());
    }

    #[test]
    fn shards_override_parses_without_env() {
        // The parse rules, through the injectable parameter — no
        // process-global environment mutation.
        assert_eq!(shards_override(Some("5")), Some(5));
        assert_eq!(shards_override(Some(" 12 ")), Some(12));
        assert_eq!(shards_override(Some("0")), None);
        assert_eq!(shards_override(Some("not-a-number")), None);
        assert_eq!(shards_override(None), None);
    }

    #[test]
    fn shard_env_override_is_honored() {
        // The one test that really mutates the variable, serialized behind
        // the crate-wide env lock so no concurrent test observes the write.
        let _guard = phishare_test_util::env_lock();
        std::env::set_var("PHISHARE_NEGOTIATOR_SHARDS", "5");
        assert_eq!(default_shards(), 5);
        std::env::remove_var("PHISHARE_NEGOTIATOR_SHARDS");
        assert!(default_shards() >= 1);
    }

    /// Everything observable from a churny run: per-cycle (matches,
    /// stats), the final collector, and the final pending set.
    type ChurnyRun = (Vec<(Vec<Match>, CycleStats)>, Collector, Vec<JobId>);

    /// Build the same mixed workload (pins, exclusives, never-matchers,
    /// certificate holders) against a `parts`-partitioned pool and run it
    /// through several churny cycles, returning everything observable.
    fn churny_run(parts: usize) -> ChurnyRun {
        let mut q = JobQueue::new();
        for i in 0..12 {
            let ad = match i % 4 {
                0 => exclusive_job_ad(&spec(i, 1000, 240)),
                1 => sharing_job_ad(&spec(i, 9000, 60)), // never fits
                _ => sharing_job_ad(&spec(i, 2000 + (i % 3) * 1500, 60)),
            };
            q.submit(JobId(i), ad, SimTime::ZERO).unwrap();
        }
        q.qedit_expr(JobId(6), "Requirements", &attrs::pin_to_node("node3"))
            .unwrap();
        q.qedit_expr(
            JobId(10),
            "Requirements",
            &attrs::pin_requirements("slot1@node5"),
        )
        .unwrap();
        let mut c = cluster_partitioned(6, 2, parts);
        let n = Negotiator::default();
        let mut cycles = Vec::new();
        for round in 0..5 {
            match round {
                1 => {
                    for slot in c.node_slots(2) {
                        c.release(slot);
                        c.refresh_phi_availability(slot, 7680, 1);
                    }
                }
                2 => {
                    c.invalidate_node(4);
                }
                3 => {
                    Startd::new(4, 2, 1, 8192).advertise(&mut c, 7680, 1);
                    q.qedit_value(JobId(1), attrs::REQUEST_PHI_MEMORY, 500u64)
                        .unwrap();
                }
                _ => {}
            }
            cycles.push(n.negotiate_delta_with_stats(&mut q, &mut c));
        }
        (cycles, c, q.pending())
    }

    #[test]
    fn partition_count_cannot_change_results() {
        let baseline = churny_run(1);
        for parts in [2, 3, 8] {
            let run = churny_run(parts);
            assert_eq!(run.0, baseline.0, "partitions={parts}");
            assert_eq!(run.1, baseline.1, "partitions={parts}");
            assert_eq!(run.2, baseline.2, "partitions={parts}");
        }
    }

    #[test]
    fn partitioned_screen_on_forced_threads_matches_serial() {
        // Force the threaded partition fan-out even on a single-core
        // machine; serialized behind the crate env lock.
        let _guard = phishare_test_util::env_lock();
        std::env::set_var("PHISHARE_PARTITION_THREADS", "4");
        let threaded = churny_run(4);
        std::env::remove_var("PHISHARE_PARTITION_THREADS");
        let serial = churny_run(4);
        assert_eq!(threaded.0, serial.0);
        assert_eq!(threaded.1, serial.1);
        assert_eq!(threaded.2, serial.2);
    }

    #[test]
    fn quiescent_cycles_short_circuit_to_identical_results() {
        let build = || {
            let mut q = JobQueue::new();
            for i in 0..4 {
                q.submit(JobId(i), sharing_job_ad(&spec(i, 3000, 60)), SimTime::ZERO)
                    .unwrap();
            }
            (q, cluster(1, 2))
        };
        let (mut q_fast, mut c_fast) = build();
        let (mut q_slow, mut c_slow) = build();
        let fast = Negotiator::default(); // quiescence on by default
        let slow = Negotiator::default().with_quiescence(false);

        // Cycle 1 matches two jobs and certifies the rest — not quiescent.
        assert!(!Negotiator::cycle_is_quiescent(&q_fast, &c_fast));
        let first_fast = fast.negotiate_delta_with_stats(&mut q_fast, &mut c_fast);
        let first_slow = slow.negotiate_delta_with_stats(&mut q_slow, &mut c_slow);
        assert_eq!(first_fast, first_slow);
        assert_eq!(first_fast.0.len(), 2);

        // No churn since: provably quiescent, and the skipped cycle is
        // bit-identical to the executed one — stats, certificates, pool.
        assert!(Negotiator::cycle_is_quiescent(&q_fast, &c_fast));
        let second_fast = fast.negotiate_delta_with_stats(&mut q_fast, &mut c_fast);
        let second_slow = slow.negotiate_delta_with_stats(&mut q_slow, &mut c_slow);
        assert_eq!(second_fast, second_slow);
        assert_eq!(second_fast.1.considered, 2);
        assert_eq!(second_fast.1.unmatched, 2);
        assert_eq!(c_fast, c_slow);
        for i in [2u64, 3] {
            assert_eq!(
                q_fast.get(JobId(i)).unwrap().eval_seq(),
                q_slow.get(JobId(i)).unwrap().eval_seq(),
            );
        }

        // A release dirties the pool: no longer quiescent, and both twins
        // pick up the freed slot in lockstep.
        for (q, c) in [(&mut q_fast, &mut c_fast), (&mut q_slow, &mut c_slow)] {
            let slot = first_fast.0[0].slot;
            c.release(slot);
            c.refresh_phi_availability(slot, 7680, 1);
            assert!(!Negotiator::cycle_is_quiescent(q, c));
        }
        let third_fast = fast.negotiate_delta_with_stats(&mut q_fast, &mut c_fast);
        let third_slow = slow.negotiate_delta_with_stats(&mut q_slow, &mut c_slow);
        assert_eq!(third_fast, third_slow);
        assert_eq!(third_fast.0.len(), 1);
        assert_eq!(c_fast, c_slow);
    }

    #[test]
    fn fresh_arrivals_defeat_quiescence() {
        let mut q = JobQueue::new();
        let mut c = cluster(1, 1);
        // Empty idle queue is trivially quiescent.
        assert!(Negotiator::cycle_is_quiescent(&q, &c));
        q.submit(JobId(0), sharing_job_ad(&spec(0, 9000, 60)), SimTime::ZERO)
            .unwrap();
        // An uncertified arrival must force an executed cycle.
        assert!(!Negotiator::cycle_is_quiescent(&q, &c));
        let n = Negotiator::default();
        let (matches, stats) = n.negotiate_delta_with_stats(&mut q, &mut c);
        assert!(matches.is_empty());
        assert_eq!(stats.considered, 1);
        // Now certified against a still pool: quiescent until churn.
        assert!(Negotiator::cycle_is_quiescent(&q, &c));
        // A qedit drops the certificate and defeats quiescence again.
        q.qedit_value(JobId(0), attrs::REQUEST_PHI_MEMORY, 100u64)
            .unwrap();
        assert!(!Negotiator::cycle_is_quiescent(&q, &c));
    }

    #[test]
    fn match_path_parses_from_cli_spelling() {
        assert_eq!("delta".parse::<MatchPath>().unwrap(), MatchPath::Delta);
        assert_eq!("Full".parse::<MatchPath>().unwrap(), MatchPath::Full);
        assert!("eager".parse::<MatchPath>().is_err());
        assert_eq!(MatchPath::default(), MatchPath::Delta);
    }
}
