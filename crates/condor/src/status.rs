//! `condor_q` / `condor_status`-style reporting over the queue and the
//! collector — the operator's view of the cluster.

use crate::collector::Collector;
use crate::queue::{JobQueue, JobState};
use phishare_classad::Value;
use std::fmt;

/// Snapshot of queue occupancy by state (what `condor_q -totals` prints).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct QueueTotals {
    /// Jobs submitted on hold / held.
    pub held: usize,
    /// Idle jobs awaiting matchmaking.
    pub idle: usize,
    /// Matched jobs in the shadow/starter handshake.
    pub matched: usize,
    /// Running jobs.
    pub running: usize,
    /// Completed jobs.
    pub completed: usize,
    /// Removed jobs.
    pub removed: usize,
}

impl QueueTotals {
    /// Compute totals over a queue.
    pub fn of(queue: &JobQueue) -> Self {
        let mut t = QueueTotals::default();
        for id in queue.job_ids() {
            match queue.get(id).expect("listed job exists").state {
                JobState::Held => t.held += 1,
                JobState::Idle => t.idle += 1,
                JobState::Matched(_) => t.matched += 1,
                JobState::Running(_) => t.running += 1,
                JobState::Completed => t.completed += 1,
                JobState::Removed => t.removed += 1,
            }
        }
        t
    }

    /// Total jobs ever submitted.
    pub fn total(&self) -> usize {
        self.held + self.idle + self.matched + self.running + self.completed + self.removed
    }
}

impl fmt::Display for QueueTotals {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} jobs; {} held, {} idle, {} matched, {} running, {} completed, {} removed",
            self.total(),
            self.held,
            self.idle,
            self.matched,
            self.running,
            self.completed,
            self.removed
        )
    }
}

/// Per-node pool summary (what `condor_status` prints, Phi-flavoured).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeStatus {
    /// Node index.
    pub node: u32,
    /// Total slots.
    pub slots: usize,
    /// Claimed slots.
    pub claimed: usize,
    /// Advertised free Phi memory, MB (node-level).
    pub phi_free_mb: i64,
    /// Advertised free (unclaimed) Phi cards.
    pub phi_devices_free: i64,
}

/// Summarize the pool per node.
pub fn pool_status(collector: &Collector) -> Vec<NodeStatus> {
    let mut nodes: std::collections::BTreeMap<u32, NodeStatus> = std::collections::BTreeMap::new();
    for (slot, status) in collector.slots() {
        let entry = nodes.entry(slot.node).or_insert(NodeStatus {
            node: slot.node,
            slots: 0,
            claimed: 0,
            phi_free_mb: 0,
            phi_devices_free: 0,
        });
        entry.slots += 1;
        if status.claimed {
            entry.claimed += 1;
        }
        // Node-level attributes are replicated on every slot ad; take them
        // from any slot.
        if let Some(Value::Int(free)) = status.ad.get(crate::attrs::PHI_FREE_MEMORY) {
            entry.phi_free_mb = *free;
        }
        if let Some(Value::Int(free)) = status.ad.get(crate::attrs::PHI_DEVICES_FREE) {
            entry.phi_devices_free = *free;
        }
    }
    nodes.into_values().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collector::SlotId;
    use crate::startd::Startd;
    use phishare_classad::ClassAd;
    use phishare_sim::SimTime;
    use phishare_workload::JobId;

    #[test]
    fn queue_totals_track_every_state() {
        let mut q = JobQueue::new();
        for i in 0..6u64 {
            q.submit(JobId(i), ClassAd::new(), SimTime::ZERO).unwrap();
        }
        q.hold(JobId(0)).unwrap();
        q.set_matched(JobId(1), SlotId { node: 1, slot: 1 })
            .unwrap();
        q.set_matched(JobId(2), SlotId { node: 1, slot: 2 })
            .unwrap();
        q.set_running(JobId(2)).unwrap();
        q.set_matched(JobId(3), SlotId { node: 1, slot: 3 })
            .unwrap();
        q.set_running(JobId(3)).unwrap();
        q.set_completed(JobId(3)).unwrap();
        q.set_removed(JobId(4)).unwrap();
        let t = QueueTotals::of(&q);
        assert_eq!(
            t,
            QueueTotals {
                held: 1,
                idle: 1,
                matched: 1,
                running: 1,
                completed: 1,
                removed: 1,
            }
        );
        assert_eq!(t.total(), 6);
        assert!(t.to_string().contains("6 jobs"));
    }

    #[test]
    fn pool_status_summarizes_nodes() {
        let mut c = Collector::new();
        Startd::new(1, 4, 1, 8192).advertise(&mut c, 7680, 1);
        Startd::new(2, 4, 1, 8192).advertise(&mut c, 1024, 0);
        c.claim(SlotId { node: 2, slot: 3 });
        let status = pool_status(&c);
        assert_eq!(status.len(), 2);
        assert_eq!(status[0].node, 1);
        assert_eq!(status[0].slots, 4);
        assert_eq!(status[0].claimed, 0);
        assert_eq!(status[0].phi_free_mb, 7680);
        assert_eq!(status[1].claimed, 1);
        assert_eq!(status[1].phi_devices_free, 0);
    }
}
