//! ClassAd attribute conventions and ad builders.
//!
//! These mirror the paper's setup: "Each compute node obtains the number of
//! Xeon Phi cards available as well as the card memory through the Xeon
//! Phi's micinfo utility, and advertises this in its ClassAd. Each job
//! specifies its preferences for the number of Xeon Phi devices and memory
//! in its job script." (§IV-D1)

use phishare_classad::ad::REQUIREMENTS;
use phishare_classad::ClassAd;
use phishare_workload::JobSpec;

/// Machine ad: slot name, e.g. `"slot2@node3"`.
pub const NAME: &str = "Name";
/// Machine ad: node name, e.g. `"node3"` (shared by all its slots).
pub const MACHINE: &str = "Machine";
/// Machine ad: number of Xeon Phi cards on the node.
pub const PHI_DEVICES: &str = "PhiDevices";
/// Machine ad: unallocated (declared) Phi memory on the node, MB.
pub const PHI_FREE_MEMORY: &str = "PhiFreeMemory";
/// Machine ad: Phi cards not exclusively claimed (used by the MC policy).
pub const PHI_DEVICES_FREE: &str = "PhiDevicesFree";
/// Machine ad: total Phi memory per card, MB.
pub const PHI_CARD_MEMORY: &str = "PhiCardMemory";

/// Job ad: requested Phi memory, MB.
pub const REQUEST_PHI_MEMORY: &str = "RequestPhiMemory";
/// Job ad: requested Phi threads.
pub const REQUEST_PHI_THREADS: &str = "RequestPhiThreads";
/// Job ad: set when the job demands a whole card for its lifetime (the
/// exclusive-allocation policy of stock deployments).
pub const REQUEST_EXCLUSIVE_PHI: &str = "RequestExclusivePhi";
/// Job ad: the job's cluster-wide id.
pub const JOB_ID: &str = "ClusterId";

/// Lower-cased (canonical) attribute handles for hot-path lookups.
///
/// `ClassAd` stores attribute names lower-cased; looking one up through a
/// mixed-case name allocates a lowered copy of the key on every call. The
/// negotiation inner loop resolves its well-known attributes through these
/// handles instead, which hit the map's no-alloc fast path. A unit test
/// pins each handle to the lowercase of its display-cased sibling.
pub mod lc {
    /// [`super::NAME`], canonical.
    pub const NAME: &str = "name";
    /// [`super::MACHINE`], canonical.
    pub const MACHINE: &str = "machine";
    /// [`super::PHI_DEVICES`], canonical.
    pub const PHI_DEVICES: &str = "phidevices";
    /// [`super::PHI_FREE_MEMORY`], canonical.
    pub const PHI_FREE_MEMORY: &str = "phifreememory";
    /// [`super::PHI_DEVICES_FREE`], canonical.
    pub const PHI_DEVICES_FREE: &str = "phidevicesfree";
    /// [`super::PHI_CARD_MEMORY`], canonical.
    pub const PHI_CARD_MEMORY: &str = "phicardmemory";
    /// [`super::REQUEST_PHI_MEMORY`], canonical.
    pub const REQUEST_PHI_MEMORY: &str = "requestphimemory";
    /// [`super::REQUEST_EXCLUSIVE_PHI`], canonical.
    pub const REQUEST_EXCLUSIVE_PHI: &str = "requestexclusivephi";
    /// [`phishare_classad::ad::RANK`], canonical.
    pub const RANK: &str = "rank";
    /// [`phishare_classad::ad::REQUIREMENTS`], canonical.
    pub const REQUIREMENTS: &str = "requirements";
}

/// Build a machine ad for one slot.
///
/// `phi_free_memory_mb` is the node-level declared-free Phi memory; the
/// cluster runtime refreshes it as jobs are placed and complete.
pub fn machine_ad(
    slot_name: &str,
    node_name: &str,
    phi_devices: u32,
    phi_card_memory_mb: u64,
    phi_free_memory_mb: u64,
    phi_devices_free: u32,
) -> ClassAd {
    let mut ad = ClassAd::new();
    ad.insert(NAME, slot_name);
    ad.insert(MACHINE, node_name);
    ad.insert(PHI_DEVICES, phi_devices);
    ad.insert(PHI_CARD_MEMORY, phi_card_memory_mb);
    ad.insert(PHI_FREE_MEMORY, phi_free_memory_mb);
    ad.insert(PHI_DEVICES_FREE, phi_devices_free);
    ad
}

/// Build the job ad a submit file produces under the **sharing** policies
/// (MCC / MCCK): the job requires a node with enough unallocated Phi memory.
pub fn sharing_job_ad(spec: &JobSpec) -> ClassAd {
    let mut ad = ClassAd::new();
    ad.insert(JOB_ID, spec.id.raw());
    ad.insert(REQUEST_PHI_MEMORY, spec.mem_req_mb);
    ad.insert(REQUEST_PHI_THREADS, spec.thread_req);
    ad.insert(REQUEST_EXCLUSIVE_PHI, false);
    ad.insert_expr(
        REQUIREMENTS,
        "TARGET.PhiDevices >= 1 && TARGET.PhiFreeMemory >= MY.RequestPhiMemory",
    )
    .expect("static requirements expression parses");
    ad
}

/// Build the job ad under the **exclusive** policy (MC): the job claims a
/// whole card.
pub fn exclusive_job_ad(spec: &JobSpec) -> ClassAd {
    let mut ad = ClassAd::new();
    ad.insert(JOB_ID, spec.id.raw());
    ad.insert(REQUEST_PHI_MEMORY, spec.mem_req_mb);
    ad.insert(REQUEST_PHI_THREADS, spec.thread_req);
    ad.insert(REQUEST_EXCLUSIVE_PHI, true);
    ad.insert_expr(REQUIREMENTS, "TARGET.PhiDevicesFree >= 1")
        .expect("static requirements expression parses");
    ad
}

/// The `condor_qedit` the paper's scheduler performs: pin a job to exactly
/// one slot by rewriting its `Requirements` to `Name == "<slot>@<node>"`
/// (§IV-D1).
pub fn pin_requirements(slot_name: &str) -> String {
    format!("TARGET.Name == \"{slot_name}\"")
}

/// Node-level pin: any slot of the chosen node may run the job. The paper
/// pins to a specific slot id; pinning to the node is equivalent for
/// homogeneous slots and lets Condor pick whichever slot is free.
pub fn pin_to_node(node_name: &str) -> String {
    format!("TARGET.Machine == \"{node_name}\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use phishare_sim::SimDuration;
    use phishare_workload::table1::AppKind;
    use phishare_workload::{JobId, JobProfile, Segment};

    fn spec() -> JobSpec {
        JobSpec {
            id: JobId(7),
            name: "KM-7".into(),
            app: AppKind::KM,
            mem_req_mb: 1024,
            thread_req: 60,
            actual_peak_mem_mb: 900,
            profile: JobProfile::new(vec![Segment::offload(60, SimDuration::from_secs(1))]),
        }
    }

    #[test]
    fn lc_handles_are_the_lowercase_of_their_siblings() {
        for (lc, display) in [
            (lc::NAME, NAME),
            (lc::MACHINE, MACHINE),
            (lc::PHI_DEVICES, PHI_DEVICES),
            (lc::PHI_FREE_MEMORY, PHI_FREE_MEMORY),
            (lc::PHI_DEVICES_FREE, PHI_DEVICES_FREE),
            (lc::PHI_CARD_MEMORY, PHI_CARD_MEMORY),
            (lc::REQUEST_PHI_MEMORY, REQUEST_PHI_MEMORY),
            (lc::REQUEST_EXCLUSIVE_PHI, REQUEST_EXCLUSIVE_PHI),
            (lc::RANK, phishare_classad::ad::RANK),
            (lc::REQUIREMENTS, REQUIREMENTS),
        ] {
            assert_eq!(lc, display.to_ascii_lowercase(), "handle for {display}");
        }
    }

    #[test]
    fn sharing_job_matches_machine_with_room() {
        let job = sharing_job_ad(&spec());
        let machine = machine_ad("slot1@node1", "node1", 1, 8192, 7680, 1);
        assert!(job.matches(&machine));
    }

    #[test]
    fn sharing_job_rejects_full_machine() {
        let job = sharing_job_ad(&spec());
        let machine = machine_ad("slot1@node1", "node1", 1, 8192, 512, 1);
        assert!(!job.matches(&machine)); // 512 < 1024 requested
    }

    #[test]
    fn exclusive_job_needs_a_free_card() {
        let job = exclusive_job_ad(&spec());
        let free = machine_ad("slot1@node1", "node1", 1, 8192, 7680, 1);
        let taken = machine_ad("slot2@node1", "node1", 1, 8192, 7680, 0);
        assert!(job.matches(&free));
        assert!(!job.matches(&taken));
    }

    #[test]
    fn job_without_phi_never_matches_philess_node() {
        let job = sharing_job_ad(&spec());
        let machine = machine_ad("slot1@node9", "node9", 0, 0, 0, 0);
        assert!(!job.matches(&machine));
    }

    #[test]
    fn pin_requirements_pin_to_one_slot() {
        let mut job = sharing_job_ad(&spec());
        job.insert_expr(REQUIREMENTS, &pin_requirements("slot3@node2"))
            .unwrap();
        let right = machine_ad("slot3@node2", "node2", 1, 8192, 100, 1);
        let wrong = machine_ad("slot3@node4", "node4", 1, 8192, 7680, 1);
        assert!(job.matches(&right)); // pin overrides the memory check
        assert!(!job.matches(&wrong));
    }
}
