//! # phishare-condor — a miniature HTCondor
//!
//! The paper integrates its scheduler as a *transparent add-on* to HTCondor
//! 7.8.7 (§IV-D1): machines advertise Xeon Phi devices and memory in their
//! ClassAds, jobs request Phi resources in their submit files, the central
//! manager's **negotiator** matches pending jobs to slots in FIFO order at
//! periodic *negotiation cycles*, and the sharing-aware scheduler steers the
//! whole thing purely by editing job `Requirements` with `condor_qedit`.
//!
//! This crate rebuilds the moving parts that behaviour depends on:
//!
//! * [`attrs`] — the ClassAd attribute conventions (machine-side
//!   `PhiFreeMemory`, `PhiDevicesFree`, job-side `RequestPhiMemory`, …) and
//!   ad builders for machines and jobs;
//! * [`queue`] — the schedd's job queue: FIFO submit order, job state
//!   machine, and `qedit` (the integration hook the paper uses);
//! * [`collector`] — the central manager's view of every slot's ad and claim
//!   state;
//! * [`startd`] — per-node slot advertisement;
//! * [`negotiator`] — the periodic FIFO matchmaking cycle, including
//!   single-cycle resource decrements so one cycle cannot overcommit a
//!   node's coprocessor memory.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attrs;
pub mod collector;
pub mod negotiator;
pub mod queue;
pub mod startd;
pub mod status;

pub use collector::{Collector, SlotId};
pub use negotiator::{CycleStats, Match, MatchPath, Negotiator};
pub use queue::{JobQueue, JobState, QueuedJob};
pub use startd::Startd;
pub use status::{pool_status, NodeStatus, QueueTotals};
