//! Per-node slot advertisement (the startd's role).

use crate::attrs;
use crate::collector::{Collector, SlotId};

/// The startd of one compute node: owns the node's slot layout and publishes
/// slot ads reflecting current Phi availability.
///
/// The paper's nodes have two 8-core Xeons; Condor's default is one slot per
/// host core, so 16 slots per node. Each slot runs at most one job; Phi
/// resources are node-level attributes repeated in every slot ad (§IV-D1).
#[derive(Debug, Clone)]
pub struct Startd {
    /// Node index.
    pub node: u32,
    /// Number of host slots.
    pub slots: u32,
    /// Number of Phi cards.
    pub phi_devices: u32,
    /// Per-card device memory, MB.
    pub phi_card_memory_mb: u64,
}

impl Startd {
    /// Create a startd for `node`.
    pub fn new(node: u32, slots: u32, phi_devices: u32, phi_card_memory_mb: u64) -> Self {
        assert!(slots > 0, "a node needs at least one slot");
        Startd {
            node,
            slots,
            phi_devices,
            phi_card_memory_mb,
        }
    }

    /// The node's Condor name, e.g. `node3`.
    pub fn node_name(&self) -> String {
        format!("node{}", self.node)
    }

    /// Slot ids in ascending order (1-based).
    pub fn slot_ids(&self) -> Vec<SlotId> {
        (1..=self.slots)
            .map(|slot| SlotId {
                node: self.node,
                slot,
            })
            .collect()
    }

    /// Refresh this node's slot ads in place with current Phi availability.
    ///
    /// A slot ad is a fixed machine description plus two mutable
    /// availability numbers; rebuilding the whole ad for every slot on
    /// every negotiation cycle dominated experiment wall time, so this
    /// touches only the two numbers (publishing a full ad the first time a
    /// slot is seen). The resulting collector state is identical to a full
    /// [`Startd::advertise`].
    pub fn refresh(
        &self,
        collector: &mut Collector,
        phi_free_memory_mb: u64,
        phi_devices_free: u32,
    ) {
        for slot in self.slot_ids() {
            if !collector.refresh_phi_availability(slot, phi_free_memory_mb, phi_devices_free) {
                let ad = attrs::machine_ad(
                    &slot.name(),
                    &self.node_name(),
                    self.phi_devices,
                    self.phi_card_memory_mb,
                    phi_free_memory_mb,
                    phi_devices_free,
                );
                collector.advertise(slot, ad);
            }
        }
    }

    /// Publish (or refresh) all this node's slot ads with the given current
    /// Phi availability.
    pub fn advertise(
        &self,
        collector: &mut Collector,
        phi_free_memory_mb: u64,
        phi_devices_free: u32,
    ) {
        let node_name = self.node_name();
        for slot in self.slot_ids() {
            let ad = attrs::machine_ad(
                &slot.name(),
                &node_name,
                self.phi_devices,
                self.phi_card_memory_mb,
                phi_free_memory_mb,
                phi_devices_free,
            );
            collector.advertise(slot, ad);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phishare_classad::Value;

    #[test]
    fn advertises_all_slots_with_node_attrs() {
        let startd = Startd::new(3, 16, 1, 8192);
        let mut c = Collector::new();
        startd.advertise(&mut c, 7680, 1);
        assert_eq!(c.len(), 16);
        let s = c.get(SlotId { node: 3, slot: 5 }).unwrap();
        assert_eq!(
            s.ad.get(attrs::NAME),
            Some(&Value::Str("slot5@node3".into()))
        );
        assert_eq!(s.ad.get(attrs::MACHINE), Some(&Value::Str("node3".into())));
        assert_eq!(s.ad.get(attrs::PHI_FREE_MEMORY), Some(&Value::Int(7680)));
    }

    #[test]
    fn refresh_updates_phi_availability() {
        let startd = Startd::new(1, 4, 1, 8192);
        let mut c = Collector::new();
        startd.advertise(&mut c, 7680, 1);
        startd.advertise(&mut c, 1024, 0);
        let s = c.get(SlotId { node: 1, slot: 1 }).unwrap();
        assert_eq!(s.ad.get(attrs::PHI_FREE_MEMORY), Some(&Value::Int(1024)));
        assert_eq!(s.ad.get(attrs::PHI_DEVICES_FREE), Some(&Value::Int(0)));
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_slots_rejected() {
        let _ = Startd::new(1, 0, 1, 8192);
    }

    #[test]
    fn refresh_is_equivalent_to_full_advertise() {
        let startd = Startd::new(2, 4, 2, 8192);
        let mut advertised = Collector::new();
        let mut refreshed = Collector::new();

        // First publication: refresh falls back to full ads.
        startd.advertise(&mut advertised, 7680, 2);
        startd.refresh(&mut refreshed, 7680, 2);
        assert_eq!(advertised, refreshed);

        // Claims must survive either update path.
        assert!(advertised.claim(SlotId { node: 2, slot: 1 }));
        assert!(refreshed.claim(SlotId { node: 2, slot: 1 }));

        startd.advertise(&mut advertised, 512, 0);
        startd.refresh(&mut refreshed, 512, 0);
        assert_eq!(advertised, refreshed);

        // Unchanged values: the in-place path skips the writes but the
        // observable state still matches a full re-advertise.
        startd.advertise(&mut advertised, 512, 0);
        startd.refresh(&mut refreshed, 512, 0);
        assert_eq!(advertised, refreshed);
    }
}
