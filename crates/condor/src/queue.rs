//! The schedd's job queue.

use crate::collector::SlotId;
use phishare_classad::parser::ParseError;
use phishare_classad::{ClassAd, CompiledReq, Value};
use phishare_sim::SimTime;
use phishare_workload::JobId;
use std::collections::{BTreeMap, BTreeSet};

/// Lifecycle of a queued job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Submitted on hold: invisible to matchmaking until released. The
    /// external cluster schedulers submit jobs held and release them with
    /// their placement pin, making the scheduler the only placement
    /// authority (the paper's add-on owns all MCC/MCCK placements).
    Held,
    /// Waiting to be matched.
    Idle,
    /// Matched to a slot; the shadow/starter handshake is in flight.
    Matched(SlotId),
    /// Executing on a slot.
    Running(SlotId),
    /// Finished successfully.
    Completed,
    /// Removed (killed by middleware, OOM, or the user).
    Removed,
}

impl JobState {
    /// True for `Idle`.
    pub fn is_idle(self) -> bool {
        matches!(self, JobState::Idle)
    }

    /// True for terminal states.
    pub fn is_terminal(self) -> bool {
        matches!(self, JobState::Completed | JobState::Removed)
    }
}

/// One job as the schedd sees it.
#[derive(Debug, Clone)]
pub struct QueuedJob {
    /// The job's id.
    pub id: JobId,
    /// The job's ClassAd (resource requests + `Requirements`).
    pub ad: ClassAd,
    /// Current state.
    pub state: JobState,
    /// When the job was submitted.
    pub submitted: SimTime,
    /// `Requirements` compiled for the negotiator's fast path. Rebuilt on
    /// every qedit (expression *or* value — value edits change the MY-side
    /// constants folded into the compilation).
    compiled: CompiledReq,
    /// Queue position keying the per-state indexes. Assigned at submission
    /// and re-assigned fresh on every entry into `Idle`/`Held`: a released
    /// or requeued job goes to the back of the line, it does not retake its
    /// original submission slot.
    pos: usize,
    /// Delta-negotiation cache: the collector sequence number at which a
    /// negotiation cycle last evaluated this job against the *whole* pool
    /// and found no match ([`JobQueue::note_unmatched`]). `None` means the
    /// job has no such certificate and must be screened against every slot.
    /// Cleared whenever the certificate could be invalidated: any qedit
    /// (the job ad — and hence its compiled requirements — changed) and
    /// every entry into `Idle` (conservative; a fresh arrival in the pool
    /// has never been evaluated at all).
    eval_seq: Option<u64>,
}

impl QueuedJob {
    /// The job's compiled `Requirements`.
    pub fn compiled(&self) -> &CompiledReq {
        &self.compiled
    }

    /// The collector sequence at which this job was last certified
    /// unmatched, if that certificate is still standing (see the field
    /// docs — this is what the negotiator's delta path keys on).
    pub fn eval_seq(&self) -> Option<u64> {
        self.eval_seq
    }
}

/// The schedd queue: FIFO submit order with per-job state.
///
/// Negotiation cycles enumerate idle (and external schedulers held) jobs
/// every few simulated seconds; scanning the whole FIFO for them made the
/// scan O(all jobs ever submitted) per cycle. The queue therefore keeps
/// per-state indexes, ordered by queue position, that every state
/// transition maintains incrementally.
///
/// Position semantics: positions are allocated from a monotone counter.
/// First-time submissions take them in submission order, so an untouched
/// queue is plain FIFO; every later entry into `Idle` or `Held` (release,
/// hold, requeue) takes a *fresh tail position*. A job released after a
/// hold — or requeued after its startd died — waits behind jobs that were
/// already schedulable, matching HTCondor's behaviour where a vacated job
/// re-enters negotiation order at the back of its priority class.
#[derive(Debug, Default, Clone)]
pub struct JobQueue {
    jobs: BTreeMap<JobId, QueuedJob>,
    fifo: Vec<JobId>,
    /// Idle jobs as `(queue position, id)` — what matchmaking scans.
    idle: BTreeSet<(usize, JobId)>,
    /// Held jobs as `(queue position, id)` — what external schedulers plan
    /// over.
    held: BTreeSet<(usize, JobId)>,
    /// Standing unmatched certificates of *idle* jobs, as
    /// `(certified sequence, id)` — the quiescence check reads the minimum
    /// in O(log n). Maintained alongside `eval_seq` by every path that
    /// grants, renews or invalidates a certificate.
    certs: BTreeSet<(u64, JobId)>,
    /// Idle jobs with no standing certificate. Together with `certs` this
    /// partitions the idle pool: `idle.len() == idle_uncertified +
    /// certs.len()` always.
    idle_uncertified: usize,
    /// Next queue position to hand out (see the struct docs).
    next_pos: usize,
}

/// Errors from queue operations.
#[derive(Debug, Clone, PartialEq)]
pub enum QueueError {
    /// The job id is already queued.
    Duplicate(JobId),
    /// The job id is not in the queue.
    Unknown(JobId),
    /// A qedit expression failed to parse.
    BadExpression(ParseError),
    /// An illegal state transition was attempted.
    BadTransition {
        /// Job involved.
        job: JobId,
        /// Human-readable description.
        detail: String,
    },
}

impl std::fmt::Display for QueueError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueueError::Duplicate(j) => write!(f, "job {j} already queued"),
            QueueError::Unknown(j) => write!(f, "job {j} not in queue"),
            QueueError::BadExpression(e) => write!(f, "qedit failed: {e}"),
            QueueError::BadTransition { job, detail } => {
                write!(f, "illegal transition for {job}: {detail}")
            }
        }
    }
}

impl std::error::Error for QueueError {}

impl JobQueue {
    /// Create an empty queue.
    pub fn new() -> Self {
        JobQueue::default()
    }

    /// Submit a job. FIFO position is submission order.
    pub fn submit(&mut self, id: JobId, ad: ClassAd, now: SimTime) -> Result<(), QueueError> {
        self.submit_in_state(id, ad, now, JobState::Idle)
    }

    /// Submit a job on hold (`condor_submit -hold`): it keeps its FIFO
    /// position but matchmaking ignores it until [`JobQueue::release`].
    pub fn submit_held(&mut self, id: JobId, ad: ClassAd, now: SimTime) -> Result<(), QueueError> {
        self.submit_in_state(id, ad, now, JobState::Held)
    }

    fn submit_in_state(
        &mut self,
        id: JobId,
        ad: ClassAd,
        now: SimTime,
        state: JobState,
    ) -> Result<(), QueueError> {
        if self.jobs.contains_key(&id) {
            return Err(QueueError::Duplicate(id));
        }
        let compiled = CompiledReq::compile(&ad);
        let pos = self.next_pos;
        self.next_pos += 1;
        self.jobs.insert(
            id,
            QueuedJob {
                id,
                ad,
                state,
                submitted: now,
                compiled,
                pos,
                eval_seq: None,
            },
        );
        self.fifo.push(id);
        match state {
            JobState::Idle => {
                self.idle.insert((pos, id));
                self.idle_uncertified += 1;
            }
            JobState::Held => {
                self.held.insert((pos, id));
            }
            _ => {}
        }
        Ok(())
    }

    /// `condor_hold`: take an idle job out of matchmaking.
    pub fn hold(&mut self, id: JobId) -> Result<(), QueueError> {
        self.transition(id, |s| match s {
            JobState::Idle => Ok(JobState::Held),
            other => Err(format!("held from {other:?}")),
        })
    }

    /// `condor_release`: return a held job to the idle pool, at a fresh
    /// tail position (see the struct docs).
    pub fn release(&mut self, id: JobId) -> Result<(), QueueError> {
        self.transition(id, |s| match s {
            JobState::Held => Ok(JobState::Idle),
            other => Err(format!("released from {other:?}")),
        })
    }

    /// Vacate a matched or running job back to `Held` (fault recovery: the
    /// startd died or the card under the job reset). The claim is gone; the
    /// job re-enters the schedulable pool at a fresh tail position and
    /// waits for a [`JobQueue::release`].
    pub fn requeue(&mut self, id: JobId) -> Result<(), QueueError> {
        self.transition(id, |s| match s {
            JobState::Matched(_) | JobState::Running(_) => Ok(JobState::Held),
            other => Err(format!("requeued from {other:?}")),
        })
    }

    /// Held jobs in FIFO order — what an external scheduler plans over.
    /// O(held), not O(all jobs), via the incrementally maintained index.
    pub fn held(&self) -> Vec<JobId> {
        self.held.iter().map(|&(_, id)| id).collect()
    }

    /// `condor_qedit`: replace an expression attribute (e.g. `Requirements`)
    /// on a queued job. The paper's scheduler calls this in a batch for all
    /// pending jobs (§IV-D1).
    pub fn qedit_expr(&mut self, id: JobId, attr: &str, expr: &str) -> Result<(), QueueError> {
        let job = self.jobs.get_mut(&id).ok_or(QueueError::Unknown(id))?;
        job.ad
            .insert_expr(attr, expr)
            .map_err(QueueError::BadExpression)?;
        job.compiled = CompiledReq::compile(&job.ad);
        self.drop_certificate(id);
        Ok(())
    }

    /// `condor_qedit` for a plain value attribute.
    pub fn qedit_value(
        &mut self,
        id: JobId,
        attr: &str,
        value: impl Into<Value>,
    ) -> Result<(), QueueError> {
        let job = self.jobs.get_mut(&id).ok_or(QueueError::Unknown(id))?;
        job.ad.insert(attr, value);
        job.compiled = CompiledReq::compile(&job.ad);
        self.drop_certificate(id);
        Ok(())
    }

    /// Invalidate `id`'s unmatched certificate (after a qedit), keeping the
    /// certificate index in step when the job is idle.
    fn drop_certificate(&mut self, id: JobId) {
        let job = self.jobs.get_mut(&id).expect("caller looked the job up");
        if let Some(old) = job.eval_seq.take() {
            if job.state.is_idle() {
                self.certs.remove(&(old, id));
                self.idle_uncertified += 1;
            }
        }
    }

    /// Record that a negotiation cycle evaluated `id` against the whole
    /// pool at collector sequence `seq` and found no admitting slot. The
    /// delta path then only re-screens the job against slots dirtied after
    /// `seq`. No-op for unknown jobs.
    pub fn note_unmatched(&mut self, id: JobId, seq: u64) {
        if let Some(job) = self.jobs.get_mut(&id) {
            let old = job.eval_seq.replace(seq);
            if job.state.is_idle() {
                match old {
                    Some(s) => {
                        self.certs.remove(&(s, id));
                    }
                    None => self.idle_uncertified -= 1,
                }
                self.certs.insert((seq, id));
            }
        }
    }

    /// The oldest standing unmatched certificate across the idle pool, or
    /// `None` when any idle job lacks one (and must be screened against the
    /// whole pool). An empty idle pool reports `u64::MAX`: with nothing
    /// pending, no mutation can create a match. O(log n).
    ///
    /// This is the queue half of the quiescence predicate: when every idle
    /// job is certified unmatched at or after the collector's newest
    /// watermark, a negotiation cycle provably matches nothing.
    pub fn idle_cert_floor(&self) -> Option<u64> {
        debug_assert_eq!(self.idle.len(), self.idle_uncertified + self.certs.len());
        if self.idle_uncertified > 0 {
            return None;
        }
        Some(self.certs.first().map_or(u64::MAX, |&(s, _)| s))
    }

    /// Number of idle jobs — [`JobQueue::pending`] without the allocation.
    pub fn idle_count(&self) -> usize {
        self.idle.len()
    }

    /// Number of held jobs — [`JobQueue::held`] without the allocation.
    pub fn held_count(&self) -> usize {
        self.held.len()
    }

    /// Look up a job.
    pub fn get(&self, id: JobId) -> Option<&QueuedJob> {
        self.jobs.get(&id)
    }

    /// All job ids in FIFO submission order.
    pub fn job_ids(&self) -> Vec<JobId> {
        self.fifo.clone()
    }

    /// Idle jobs in FIFO order — what a negotiation cycle examines.
    /// O(idle), not O(all jobs), via the incrementally maintained index.
    pub fn pending(&self) -> Vec<JobId> {
        self.idle.iter().map(|&(_, id)| id).collect()
    }

    /// Number of jobs in each non-terminal state `(idle, matched, running)`.
    pub fn active_counts(&self) -> (usize, usize, usize) {
        let mut idle = 0;
        let mut matched = 0;
        let mut running = 0;
        for j in self.jobs.values() {
            match j.state {
                JobState::Held | JobState::Idle => idle += 1,
                JobState::Matched(_) => matched += 1,
                JobState::Running(_) => running += 1,
                _ => {}
            }
        }
        (idle, matched, running)
    }

    /// True when every job reached a terminal state.
    pub fn all_terminal(&self) -> bool {
        self.jobs.values().all(|j| j.state.is_terminal())
    }

    /// Mark a job matched to `slot` (negotiator).
    pub fn set_matched(&mut self, id: JobId, slot: SlotId) -> Result<(), QueueError> {
        self.transition(id, |s| match s {
            JobState::Idle => Ok(JobState::Matched(slot)),
            other => Err(format!("matched from {other:?}")),
        })
    }

    /// Mark a matched job running (starter spawned the user process).
    pub fn set_running(&mut self, id: JobId) -> Result<(), QueueError> {
        self.transition(id, |s| match s {
            JobState::Matched(slot) => Ok(JobState::Running(slot)),
            other => Err(format!("running from {other:?}")),
        })
    }

    /// Mark a running job completed.
    pub fn set_completed(&mut self, id: JobId) -> Result<(), QueueError> {
        self.transition(id, |s| match s {
            JobState::Running(_) => Ok(JobState::Completed),
            other => Err(format!("completed from {other:?}")),
        })
    }

    /// Remove a job (kill) from any non-terminal state.
    pub fn set_removed(&mut self, id: JobId) -> Result<(), QueueError> {
        self.transition(id, |s| {
            if s.is_terminal() {
                Err(format!("removed from terminal state {s:?}"))
            } else {
                Ok(JobState::Removed)
            }
        })
    }

    fn transition(
        &mut self,
        id: JobId,
        f: impl FnOnce(JobState) -> Result<JobState, String>,
    ) -> Result<(), QueueError> {
        let job = self.jobs.get(&id).ok_or(QueueError::Unknown(id))?;
        let (prev, old_pos) = (job.state, job.pos);
        match f(prev) {
            Ok(next) => {
                // Entering the schedulable pool always takes a fresh tail
                // position (see the struct docs).
                let pos = match next {
                    JobState::Idle | JobState::Held => {
                        let p = self.next_pos;
                        self.next_pos += 1;
                        p
                    }
                    _ => old_pos,
                };
                let job = self.jobs.get_mut(&id).expect("looked up above");
                let old_cert = job.eval_seq;
                job.state = next;
                job.pos = pos;
                // Re-entering the idle pool drops any unmatched
                // certificate: the job may have spent cycles invisible to
                // matchmaking, so its last full evaluation says nothing
                // about the pool it now faces.
                if next == JobState::Idle {
                    job.eval_seq = None;
                }
                match prev {
                    JobState::Idle => {
                        self.idle.remove(&(old_pos, id));
                        match old_cert {
                            Some(s) => {
                                self.certs.remove(&(s, id));
                            }
                            None => self.idle_uncertified -= 1,
                        }
                    }
                    JobState::Held => {
                        self.held.remove(&(old_pos, id));
                    }
                    _ => {}
                }
                match next {
                    JobState::Idle => {
                        self.idle.insert((pos, id));
                        self.idle_uncertified += 1;
                    }
                    JobState::Held => {
                        self.held.insert((pos, id));
                    }
                    _ => {}
                }
                Ok(())
            }
            Err(detail) => Err(QueueError::BadTransition { job: id, detail }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn slot(n: u32, s: u32) -> SlotId {
        SlotId { node: n, slot: s }
    }

    fn queue_with(n: u64) -> JobQueue {
        let mut q = JobQueue::new();
        for i in 0..n {
            q.submit(JobId(i), ClassAd::new(), SimTime::ZERO).unwrap();
        }
        q
    }

    #[test]
    fn pending_is_fifo() {
        let q = queue_with(5);
        assert_eq!(q.pending(), (0..5).map(JobId).collect::<Vec<_>>());
    }

    #[test]
    fn state_indexes_track_every_transition() {
        let mut q = JobQueue::new();
        // Interleave held and idle submissions; FIFO order must hold
        // within each index regardless of id numbering.
        q.submit_held(JobId(7), ClassAd::new(), SimTime::ZERO)
            .unwrap();
        q.submit(JobId(3), ClassAd::new(), SimTime::ZERO).unwrap();
        q.submit_held(JobId(1), ClassAd::new(), SimTime::ZERO)
            .unwrap();
        assert_eq!(q.held(), vec![JobId(7), JobId(1)]);
        assert_eq!(q.pending(), vec![JobId(3)]);

        q.release(JobId(1)).unwrap();
        assert_eq!(q.held(), vec![JobId(7)]);
        // The released job takes a fresh tail position, behind the
        // already-idle JobId(3).
        assert_eq!(q.pending(), vec![JobId(3), JobId(1)]);

        q.hold(JobId(3)).unwrap();
        assert_eq!(q.held(), vec![JobId(7), JobId(3)]);
        assert_eq!(q.pending(), vec![JobId(1)]);

        q.set_matched(JobId(1), slot(1, 1)).unwrap();
        assert!(q.pending().is_empty());
        q.set_running(JobId(1)).unwrap();
        q.set_completed(JobId(1)).unwrap();
        q.release(JobId(3)).unwrap();
        q.set_removed(JobId(3)).unwrap();
        assert!(q.pending().is_empty());
        assert_eq!(q.held(), vec![JobId(7)]);
        q.set_removed(JobId(7)).unwrap();
        assert!(q.held().is_empty());
        assert!(q.all_terminal());
    }

    #[test]
    fn duplicate_submit_rejected() {
        let mut q = queue_with(1);
        assert_eq!(
            q.submit(JobId(0), ClassAd::new(), SimTime::ZERO),
            Err(QueueError::Duplicate(JobId(0)))
        );
    }

    #[test]
    fn lifecycle_transitions() {
        let mut q = queue_with(1);
        q.set_matched(JobId(0), slot(1, 2)).unwrap();
        assert!(q.pending().is_empty());
        q.set_running(JobId(0)).unwrap();
        q.set_completed(JobId(0)).unwrap();
        assert!(q.all_terminal());
    }

    #[test]
    fn illegal_transitions_rejected() {
        let mut q = queue_with(1);
        assert!(q.set_running(JobId(0)).is_err()); // idle → running skips match
        assert!(q.set_completed(JobId(0)).is_err());
        q.set_matched(JobId(0), slot(1, 1)).unwrap();
        assert!(q.set_matched(JobId(0), slot(1, 1)).is_err());
        q.set_running(JobId(0)).unwrap();
        q.set_completed(JobId(0)).unwrap();
        assert!(q.set_removed(JobId(0)).is_err()); // terminal
    }

    #[test]
    fn removal_from_running() {
        let mut q = queue_with(1);
        q.set_matched(JobId(0), slot(1, 1)).unwrap();
        q.set_running(JobId(0)).unwrap();
        q.set_removed(JobId(0)).unwrap();
        assert!(q.all_terminal());
    }

    #[test]
    fn qedit_rewrites_requirements() {
        let mut q = queue_with(1);
        q.qedit_expr(JobId(0), "Requirements", "TARGET.Name == \"slot1@node1\"")
            .unwrap();
        assert!(q
            .get(JobId(0))
            .unwrap()
            .ad
            .get_expr("Requirements")
            .unwrap()
            .contains("slot1@node1"));
        assert!(q.qedit_expr(JobId(0), "Requirements", "1 +").is_err());
        assert!(q.qedit_expr(JobId(9), "Requirements", "true").is_err());
    }

    #[test]
    fn qedit_recompiles_requirements_cache() {
        let mut q = queue_with(1);
        assert!(q.get(JobId(0)).unwrap().compiled().fully_compiled());
        q.qedit_expr(JobId(0), "Requirements", "TARGET.Name == \"slot1@node1\"")
            .unwrap();
        assert_eq!(
            q.get(JobId(0)).unwrap().compiled().pin("Name"),
            Some("slot1@node1")
        );
        // Value edits also recompile: MY-side constants fold into guards.
        q.qedit_expr(
            JobId(0),
            "Requirements",
            "TARGET.PhiFreeMemory >= MY.RequestPhiMemory",
        )
        .unwrap();
        q.qedit_value(JobId(0), "RequestPhiMemory", 2048u64)
            .unwrap();
        assert_eq!(
            q.get(JobId(0))
                .unwrap()
                .compiled()
                .lower_bound("PhiFreeMemory"),
            Some(2048.0)
        );
        // Failed qedits leave the previous compilation in place.
        assert!(q.qedit_expr(JobId(0), "Requirements", "1 +").is_err());
        assert_eq!(
            q.get(JobId(0))
                .unwrap()
                .compiled()
                .lower_bound("PhiFreeMemory"),
            Some(2048.0)
        );
    }

    #[test]
    fn held_jobs_are_invisible_until_released() {
        let mut q = JobQueue::new();
        q.submit_held(JobId(0), ClassAd::new(), SimTime::ZERO)
            .unwrap();
        q.submit(JobId(1), ClassAd::new(), SimTime::ZERO).unwrap();
        assert_eq!(q.pending(), vec![JobId(1)]);
        assert_eq!(q.held(), vec![JobId(0)]);
        q.release(JobId(0)).unwrap();
        // Release re-enters at a fresh tail position: JobId(0) now waits
        // behind JobId(1), which has been idle the whole time.
        assert_eq!(q.pending(), vec![JobId(1), JobId(0)]);
        assert!(q.held().is_empty());
    }

    #[test]
    fn release_lands_at_the_tail() {
        let mut q = queue_with(3);
        q.hold(JobId(0)).unwrap();
        assert_eq!(q.pending(), vec![JobId(1), JobId(2)]);
        q.release(JobId(0)).unwrap();
        // Hold + release loses the original front-of-queue slot.
        assert_eq!(q.pending(), vec![JobId(1), JobId(2), JobId(0)]);
    }

    #[test]
    fn requeue_vacates_to_held_at_the_tail() {
        let mut q = queue_with(3);
        q.hold(JobId(2)).unwrap();
        q.set_matched(JobId(0), slot(1, 1)).unwrap();
        q.set_running(JobId(0)).unwrap();
        q.set_matched(JobId(1), slot(1, 2)).unwrap();
        // A running and a matched job both vacate; both land behind the
        // held JobId(2).
        q.requeue(JobId(0)).unwrap();
        q.requeue(JobId(1)).unwrap();
        assert_eq!(q.held(), vec![JobId(2), JobId(0), JobId(1)]);
        assert!(q.pending().is_empty());
        // Only matched/running jobs can be requeued.
        assert!(q.requeue(JobId(2)).is_err());
        q.release(JobId(0)).unwrap();
        assert_eq!(q.pending(), vec![JobId(0)]);
        assert_eq!(q.get(JobId(0)).unwrap().state, JobState::Idle);
    }

    #[test]
    fn hold_and_release_transitions() {
        let mut q = queue_with(1);
        q.hold(JobId(0)).unwrap();
        assert!(q.pending().is_empty());
        assert!(q.hold(JobId(0)).is_err()); // already held
        q.release(JobId(0)).unwrap();
        assert!(q.release(JobId(0)).is_err()); // already idle
                                               // Held jobs can be removed (condor_rm works on held jobs).
        q.hold(JobId(0)).unwrap();
        q.set_removed(JobId(0)).unwrap();
        assert!(q.all_terminal());
    }

    #[test]
    fn held_jobs_cannot_be_matched() {
        let mut q = queue_with(1);
        q.hold(JobId(0)).unwrap();
        assert!(q.set_matched(JobId(0), slot(1, 1)).is_err());
    }

    #[test]
    fn unmatched_certificates_follow_the_delta_invalidation_rules() {
        let mut q = queue_with(2);
        assert_eq!(q.get(JobId(0)).unwrap().eval_seq(), None);
        q.note_unmatched(JobId(0), 17);
        q.note_unmatched(JobId(1), 17);
        assert_eq!(q.get(JobId(0)).unwrap().eval_seq(), Some(17));
        // Unknown jobs are ignored.
        q.note_unmatched(JobId(9), 17);

        // Any qedit — expression or value — drops the certificate.
        q.qedit_expr(JobId(0), "Requirements", "TARGET.PhiDevices >= 1")
            .unwrap();
        assert_eq!(q.get(JobId(0)).unwrap().eval_seq(), None);
        q.note_unmatched(JobId(0), 18);
        q.qedit_value(JobId(0), "RequestPhiMemory", 512u64).unwrap();
        assert_eq!(q.get(JobId(0)).unwrap().eval_seq(), None);

        // Every entry into Idle drops it too (hold + release round trip)...
        q.hold(JobId(1)).unwrap();
        q.release(JobId(1)).unwrap();
        assert_eq!(q.get(JobId(1)).unwrap().eval_seq(), None);
        // ...while a job that simply stays idle keeps its certificate.
        q.note_unmatched(JobId(1), 19);
        q.hold(JobId(0)).unwrap();
        assert_eq!(q.get(JobId(1)).unwrap().eval_seq(), Some(19));
    }

    #[test]
    fn idle_cert_floor_tracks_the_oldest_certificate() {
        let mut q = JobQueue::new();
        // Empty idle pool: trivially quiescent.
        assert_eq!(q.idle_cert_floor(), Some(u64::MAX));
        q.submit(JobId(0), ClassAd::new(), SimTime::ZERO).unwrap();
        q.submit(JobId(1), ClassAd::new(), SimTime::ZERO).unwrap();
        assert_eq!(q.idle_count(), 2);
        // Fresh arrivals are uncertified: no floor.
        assert_eq!(q.idle_cert_floor(), None);
        q.note_unmatched(JobId(0), 10);
        assert_eq!(q.idle_cert_floor(), None); // JobId(1) still uncertified
        q.note_unmatched(JobId(1), 12);
        assert_eq!(q.idle_cert_floor(), Some(10));
        // Renewal moves the floor.
        q.note_unmatched(JobId(0), 15);
        assert_eq!(q.idle_cert_floor(), Some(12));

        // Qedits invalidate the certificate and the floor with it.
        q.qedit_value(JobId(1), "RequestPhiMemory", 512u64).unwrap();
        assert_eq!(q.idle_cert_floor(), None);
        q.note_unmatched(JobId(1), 16);
        assert_eq!(q.idle_cert_floor(), Some(15));

        // Leaving the idle pool removes the job from the floor entirely;
        // re-entering makes it uncertified again.
        q.hold(JobId(0)).unwrap();
        assert_eq!(q.idle_cert_floor(), Some(16));
        q.release(JobId(0)).unwrap();
        assert_eq!(q.idle_cert_floor(), None);
        q.note_unmatched(JobId(0), 20);
        assert_eq!(q.idle_cert_floor(), Some(16));

        // Matching consumes the idle entry; held jobs don't count.
        q.set_matched(JobId(1), slot(1, 1)).unwrap();
        assert_eq!(q.idle_cert_floor(), Some(20));
        q.set_matched(JobId(0), slot(1, 2)).unwrap();
        assert_eq!(q.idle_cert_floor(), Some(u64::MAX));
        assert_eq!(q.held_count(), 0);
    }

    #[test]
    fn counts_track_states() {
        let mut q = queue_with(3);
        q.set_matched(JobId(0), slot(1, 1)).unwrap();
        q.set_matched(JobId(1), slot(1, 2)).unwrap();
        q.set_running(JobId(1)).unwrap();
        assert_eq!(q.active_counts(), (1, 1, 1));
        assert!(!q.all_terminal());
    }
}
