//! Property tests for workload generation: every kind, every arrival
//! process, every seed produces a valid, internally-consistent workload.

use phishare_sim::SimDuration;
use phishare_workload::{
    workload_from_csv, workload_to_csv, ArrivalProcess, ResourceDist, SyntheticParams,
    WorkloadBuilder, WorkloadKind,
};
use proptest::prelude::*;

fn arb_kind() -> impl Strategy<Value = WorkloadKind> {
    prop_oneof![
        Just(WorkloadKind::Table1Mix),
        prop::sample::select(ResourceDist::ALL.to_vec())
            .prop_map(|d| WorkloadKind::Synthetic(d, SyntheticParams::default())),
        prop::sample::select(phishare_workload::AppKind::TABLE1.to_vec())
            .prop_map(WorkloadKind::Table1Single),
    ]
}

fn arb_arrivals() -> impl Strategy<Value = ArrivalProcess> {
    prop_oneof![
        Just(ArrivalProcess::AllAtZero),
        (1u64..30).prop_map(|s| ArrivalProcess::Poisson {
            mean_gap: SimDuration::from_secs(s)
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Any (kind, arrivals, count, seed, misbehaving) combination builds a
    /// workload whose every job validates and whose structure is coherent.
    #[test]
    fn all_workloads_validate(
        kind in arb_kind(),
        arrivals in arb_arrivals(),
        count in 0usize..60,
        seed in any::<u64>(),
        misbehaving in 0.0f64..=1.0,
    ) {
        let wl = WorkloadBuilder::new(kind)
            .count(count)
            .seed(seed)
            .arrivals(arrivals)
            .misbehaving_fraction(misbehaving)
            .build();
        prop_assert!(wl.validate().is_ok());
        prop_assert_eq!(wl.len(), count);
        prop_assert_eq!(wl.arrivals.len(), count);
        // Arrivals are nondecreasing.
        for pair in wl.arrivals.windows(2) {
            prop_assert!(pair[0] <= pair[1]);
        }
        // Job ids are dense and ordered.
        for (i, job) in wl.jobs.iter().enumerate() {
            prop_assert_eq!(job.id.raw(), i as u64);
            // Declared threads really are the profile's maximum.
            prop_assert_eq!(job.profile.max_threads(), job.thread_req);
            // Profiles alternate host/offload and are host-bracketed.
            let segs = &job.profile.segments;
            prop_assert!(!segs[0].is_offload());
            prop_assert!(!segs[segs.len() - 1].is_offload());
        }
    }

    /// The CSV round trip preserves every declared envelope exactly.
    #[test]
    fn csv_round_trip_is_lossless_on_envelopes(
        count in 1usize..40,
        seed in any::<u64>(),
    ) {
        let wl = WorkloadBuilder::new(WorkloadKind::Table1Mix).count(count).seed(seed).build();
        let back = workload_from_csv(&workload_to_csv(&wl), seed).unwrap();
        prop_assert_eq!(back.len(), wl.len());
        for (a, b) in wl.jobs.iter().zip(back.jobs.iter()) {
            prop_assert_eq!(&a.name, &b.name);
            prop_assert_eq!(a.mem_req_mb, b.mem_req_mb);
            prop_assert_eq!(a.thread_req, b.thread_req);
            prop_assert_eq!(a.profile.offload_count(), b.profile.offload_count());
        }
    }

    /// JSON round trip is bit-exact.
    #[test]
    fn json_round_trip_is_exact(count in 0usize..30, seed in any::<u64>()) {
        let wl = WorkloadBuilder::new(WorkloadKind::Table1Mix).count(count).seed(seed).build();
        let back = phishare_workload::Workload::from_json(&wl.to_json()).unwrap();
        prop_assert_eq!(wl, back);
    }

    /// Misbehaving fraction 0 ⇒ all jobs well-behaved; 1 ⇒ none.
    #[test]
    fn misbehaving_fraction_extremes(count in 1usize..40, seed in any::<u64>()) {
        let clean = WorkloadBuilder::new(WorkloadKind::Table1Mix)
            .count(count).seed(seed).misbehaving_fraction(0.0).build();
        prop_assert!(clean.jobs.iter().all(|j| j.well_behaved()));
        let dirty = WorkloadBuilder::new(WorkloadKind::Table1Mix)
            .count(count).seed(seed).misbehaving_fraction(1.0).build();
        prop_assert!(dirty.jobs.iter().all(|j| !j.well_behaved()));
    }
}
