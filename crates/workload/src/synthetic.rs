//! Synthetic job generation with the Fig. 7 resource distributions.
//!
//! The paper's sensitivity study (§V-B) uses four sets of 400 synthetic
//! offload jobs whose memory and thread requirements follow, respectively, a
//! uniform distribution, a normal distribution, and two skewed normals whose
//! means sit one standard deviation below/above the normal mean ("low
//! resource skew" / "high resource skew"). Memory and thread requirements
//! are correlated: "jobs with low Xeon Phi memory requirements also have low
//! thread requirements, and vice versa."
//!
//! We realize this with a latent *resource level* `x ∈ [0, 1]` drawn from the
//! chosen distribution; memory and threads are then affine in `x` with a
//! little decorrelating jitter on the thread side.

use crate::ids::JobId;
use crate::job::JobSpec;
use crate::table1::{build_profile, AppKind};
use phishare_sim::DetRng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The four Fig. 7 resource-requirement distributions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ResourceDist {
    /// Jobs spread evenly across resource requirements.
    Uniform,
    /// Most jobs in the mid-resource range.
    Normal,
    /// Mean shifted one standard deviation towards *low* resources.
    LowSkew,
    /// Mean shifted one standard deviation towards *high* resources.
    HighSkew,
}

impl ResourceDist {
    /// All four distributions, in the paper's presentation order.
    pub const ALL: [ResourceDist; 4] = [
        ResourceDist::Uniform,
        ResourceDist::Normal,
        ResourceDist::LowSkew,
        ResourceDist::HighSkew,
    ];

    /// Standard deviation of the latent resource level for the normal-family
    /// distributions.
    const SIGMA: f64 = 0.18;

    /// Draw a latent resource level in `[0, 1]`.
    pub fn sample_level(self, rng: &mut DetRng) -> f64 {
        match self {
            ResourceDist::Uniform => rng.uniform_f64(),
            ResourceDist::Normal => rng.truncated_normal(0.5, Self::SIGMA, 0.0, 1.0),
            ResourceDist::LowSkew => rng.truncated_normal(0.5 - Self::SIGMA, Self::SIGMA, 0.0, 1.0),
            ResourceDist::HighSkew => {
                rng.truncated_normal(0.5 + Self::SIGMA, Self::SIGMA, 0.0, 1.0)
            }
        }
    }
}

impl fmt::Display for ResourceDist {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ResourceDist::Uniform => "uniform",
            ResourceDist::Normal => "normal",
            ResourceDist::LowSkew => "low-skew",
            ResourceDist::HighSkew => "high-skew",
        };
        f.write_str(s)
    }
}

/// Tunable parameters for synthetic job generation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SyntheticParams {
    /// Memory request range (MB) mapped linearly from the resource level.
    pub mem_mb: (u64, u64),
    /// Thread request range mapped linearly from the resource level and
    /// rounded to a multiple of 4 (one core's worth of hardware threads).
    pub threads: (u32, u32),
    /// Jitter applied to the thread-side resource level so memory and thread
    /// requirements are correlated but not identical.
    pub thread_jitter: f64,
    /// Offload duty-cycle range.
    pub duty_cycle: (f64, f64),
    /// Offload-count range per job.
    pub offloads: (u32, u32),
    /// Total nominal duration range in seconds.
    pub duration_secs: (f64, f64),
}

impl Default for SyntheticParams {
    fn default() -> Self {
        SyntheticParams {
            // Full usable range of an 8 GB card minus OS/daemon reserve, so
            // high-skew sets really do contain jobs that nearly fill a card.
            mem_mb: (256, 6400),
            threads: (32, 240),
            thread_jitter: 0.08,
            duty_cycle: (0.65, 0.9),
            offloads: (4, 12),
            duration_secs: (15.0, 45.0),
        }
    }
}

impl SyntheticParams {
    /// Generate one synthetic job whose resources follow `dist`.
    pub fn generate(&self, dist: ResourceDist, id: JobId, rng: &mut DetRng) -> JobSpec {
        let level = dist.sample_level(rng);
        let mem_req_mb = lerp_u64(self.mem_mb, level);
        let t_level =
            (level + rng.uniform_range(-self.thread_jitter, self.thread_jitter)).clamp(0.0, 1.0);
        let thread_req =
            round4(lerp_u64((self.threads.0 as u64, self.threads.1 as u64), t_level) as u32)
                .clamp(4, self.threads.1);

        let duty = rng.uniform_range(self.duty_cycle.0, self.duty_cycle.1);
        let total = rng.uniform_range(self.duration_secs.0, self.duration_secs.1);
        let n_off = rng.uniform_u64(self.offloads.0 as u64, self.offloads.1 as u64) as usize;
        let profile = build_profile(total, duty, n_off, thread_req, rng);
        let actual_peak_mem_mb =
            (((mem_req_mb as f64) * rng.uniform_range(0.75, 1.0)).round() as u64).max(1);
        JobSpec {
            id,
            name: format!("SYN{dist}-{}", id.raw()),
            app: AppKind::Synthetic,
            mem_req_mb,
            thread_req,
            actual_peak_mem_mb,
            profile,
        }
    }
}

fn lerp_u64(range: (u64, u64), level: f64) -> u64 {
    assert!(range.0 <= range.1);
    range.0 + ((range.1 - range.0) as f64 * level).round() as u64
}

fn round4(threads: u32) -> u32 {
    ((threads + 2) / 4).max(1) * 4
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mean_level(dist: ResourceDist, n: usize, seed: u64) -> f64 {
        let mut rng = DetRng::from_seed(seed);
        (0..n).map(|_| dist.sample_level(&mut rng)).sum::<f64>() / n as f64
    }

    #[test]
    fn levels_stay_in_unit_interval() {
        let mut rng = DetRng::from_seed(2);
        for dist in ResourceDist::ALL {
            for _ in 0..2000 {
                let x = dist.sample_level(&mut rng);
                assert!((0.0..=1.0).contains(&x), "{dist}: {x}");
            }
        }
    }

    #[test]
    fn distribution_means_are_ordered() {
        let low = mean_level(ResourceDist::LowSkew, 4000, 1);
        let mid = mean_level(ResourceDist::Normal, 4000, 1);
        let uni = mean_level(ResourceDist::Uniform, 4000, 1);
        let high = mean_level(ResourceDist::HighSkew, 4000, 1);
        assert!(low < mid && mid < high, "means: {low} {mid} {high}");
        assert!((uni - 0.5).abs() < 0.03, "uniform mean {uni}");
        assert!((mid - 0.5).abs() < 0.03, "normal mean {mid}");
        // The skews sit roughly one sigma away from the normal mean.
        assert!(
            (mid - low - 0.18).abs() < 0.05,
            "low-skew offset {}",
            mid - low
        );
        assert!(
            (high - mid - 0.18).abs() < 0.05,
            "high-skew offset {}",
            high - mid
        );
    }

    #[test]
    fn generated_jobs_validate_and_correlate() {
        let params = SyntheticParams::default();
        let mut rng = DetRng::from_seed(9);
        let jobs: Vec<JobSpec> = (0..400)
            .map(|i| params.generate(ResourceDist::Uniform, JobId(i), &mut rng))
            .collect();
        for j in &jobs {
            j.validate().expect("synthetic job validates");
            assert!(j.thread_req % 4 == 0 && j.thread_req <= 240);
            assert!(j.mem_req_mb >= 256 && j.mem_req_mb <= 6400);
        }
        // Pearson correlation between memory and threads should be strongly
        // positive (the paper's correlated-resources assumption).
        let n = jobs.len() as f64;
        let mm = jobs.iter().map(|j| j.mem_req_mb as f64).sum::<f64>() / n;
        let tm = jobs.iter().map(|j| j.thread_req as f64).sum::<f64>() / n;
        let cov = jobs
            .iter()
            .map(|j| (j.mem_req_mb as f64 - mm) * (j.thread_req as f64 - tm))
            .sum::<f64>();
        let vm = jobs
            .iter()
            .map(|j| (j.mem_req_mb as f64 - mm).powi(2))
            .sum::<f64>();
        let vt = jobs
            .iter()
            .map(|j| (j.thread_req as f64 - tm).powi(2))
            .sum::<f64>();
        let r = cov / (vm.sqrt() * vt.sqrt());
        assert!(r > 0.8, "memory-thread correlation too weak: {r}");
    }

    #[test]
    fn skewed_sets_differ_in_resource_mass() {
        let params = SyntheticParams::default();
        let gen = |dist| {
            let mut rng = DetRng::from_seed(77);
            (0..400)
                .map(|i| params.generate(dist, JobId(i), &mut rng).mem_req_mb)
                .sum::<u64>() as f64
                / 400.0
        };
        let low = gen(ResourceDist::LowSkew);
        let high = gen(ResourceDist::HighSkew);
        assert!(
            high > low * 1.5,
            "high-skew mean memory ({high}) should dwarf low-skew ({low})"
        );
    }

    #[test]
    fn round4_behaviour() {
        assert_eq!(round4(1), 4);
        assert_eq!(round4(4), 4);
        assert_eq!(round4(6), 8);
        assert_eq!(round4(240), 240);
    }

    #[test]
    fn lerp_endpoints() {
        assert_eq!(lerp_u64((100, 200), 0.0), 100);
        assert_eq!(lerp_u64((100, 200), 1.0), 200);
        assert_eq!(lerp_u64((100, 200), 0.5), 150);
    }

    #[test]
    fn display_names() {
        assert_eq!(ResourceDist::LowSkew.to_string(), "low-skew");
    }
}
