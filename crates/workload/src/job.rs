//! The job model: declared resource envelope + execution profile.

use crate::ids::JobId;
use crate::table1::AppKind;
use phishare_sim::SimDuration;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One phase of a job's execution profile.
///
/// A Xeon Phi offload job alternates between running on the host processor
/// (leaving the coprocessor free) and offloading a kernel to the device
/// (paper §IV-A, Figs. 2–3).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Segment {
    /// Time spent on the host; the coprocessor is idle for this job.
    Host {
        /// Wall-clock duration of the host phase (hosts are never contended
        /// in the paper's setup — 16 host cores vs ≤ a handful of jobs).
        duration: SimDuration,
    },
    /// A kernel offloaded to the coprocessor.
    Offload {
        /// Hardware threads the offload spawns on the device.
        threads: u32,
        /// Nominal duration of the offload when it runs uncontended at
        /// rate 1. Contention (oversubscription, affinity conflicts) scales
        /// the effective rate in `phishare-phi`.
        work: SimDuration,
    },
}

impl Segment {
    /// Convenience constructor for a host segment.
    pub fn host(duration: SimDuration) -> Self {
        Segment::Host { duration }
    }

    /// Convenience constructor for an offload segment.
    pub fn offload(threads: u32, work: SimDuration) -> Self {
        Segment::Offload { threads, work }
    }

    /// True if this is an offload segment.
    pub fn is_offload(&self) -> bool {
        matches!(self, Segment::Offload { .. })
    }

    /// The nominal duration of the segment (host duration or offload work).
    pub fn nominal(&self) -> SimDuration {
        match *self {
            Segment::Host { duration } => duration,
            Segment::Offload { work, .. } => work,
        }
    }
}

/// The ordered segments of a job.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct JobProfile {
    /// Segments in execution order.
    pub segments: Vec<Segment>,
}

impl JobProfile {
    /// Build a profile from segments.
    pub fn new(segments: Vec<Segment>) -> Self {
        JobProfile { segments }
    }

    /// Total nominal (uncontended) duration of the job.
    pub fn total_nominal(&self) -> SimDuration {
        self.segments
            .iter()
            .fold(SimDuration::ZERO, |acc, s| acc + s.nominal())
    }

    /// Fraction of the nominal duration spent in offloads, in `[0, 1]`.
    pub fn offload_fraction(&self) -> f64 {
        let total = self.total_nominal();
        if total.is_zero() {
            return 0.0;
        }
        let off = self
            .segments
            .iter()
            .filter(|s| s.is_offload())
            .fold(SimDuration::ZERO, |acc, s| acc + s.nominal());
        off.as_secs_f64() / total.as_secs_f64()
    }

    /// Maximum thread count over all offload segments (0 if none).
    pub fn max_threads(&self) -> u32 {
        self.segments
            .iter()
            .map(|s| match *s {
                Segment::Offload { threads, .. } => threads,
                Segment::Host { .. } => 0,
            })
            .max()
            .unwrap_or(0)
    }

    /// Number of offload segments.
    pub fn offload_count(&self) -> usize {
        self.segments.iter().filter(|s| s.is_offload()).count()
    }
}

/// A schedulable job: identity, declared resource envelope and profile.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobSpec {
    /// Cluster-wide unique id.
    pub id: JobId,
    /// Human-readable name, e.g. `KM-17`.
    pub name: String,
    /// Which application generated this job.
    pub app: AppKind,
    /// Declared maximum coprocessor memory (MB). This is what the user puts
    /// in the Condor submit file and what the knapsack uses as the item
    /// weight.
    pub mem_req_mb: u64,
    /// Declared maximum coprocessor threads. Drives the knapsack value
    /// `v = 1 - (t/T)^2` and the thread-sum feasibility constraint.
    pub thread_req: u32,
    /// Actual peak memory the job will commit while running (MB). Normally
    /// ≤ `mem_req_mb`; failure-injection workloads set it higher to exercise
    /// COSMIC's container kill vs the raw OOM killer.
    pub actual_peak_mem_mb: u64,
    /// The execution profile (hidden from the scheduler).
    pub profile: JobProfile,
}

/// Validation failures for a [`JobSpec`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobSpecError {
    /// The profile contains no segments.
    EmptyProfile,
    /// An offload segment requests zero threads.
    ZeroThreadOffload,
    /// An offload requests more threads than the declared maximum.
    ThreadsExceedDeclared {
        /// Offending segment's thread count.
        threads: u32,
        /// Declared maximum.
        declared: u32,
    },
    /// The declared thread requirement is zero but the profile offloads.
    ZeroDeclaredThreads,
    /// The declared memory requirement is zero.
    ZeroDeclaredMemory,
}

impl fmt::Display for JobSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JobSpecError::EmptyProfile => write!(f, "job profile has no segments"),
            JobSpecError::ZeroThreadOffload => write!(f, "offload segment requests 0 threads"),
            JobSpecError::ThreadsExceedDeclared { threads, declared } => write!(
                f,
                "offload uses {threads} threads but job declares at most {declared}"
            ),
            JobSpecError::ZeroDeclaredThreads => {
                write!(f, "job offloads but declares 0 threads")
            }
            JobSpecError::ZeroDeclaredMemory => write!(f, "job declares 0 MB of device memory"),
        }
    }
}

impl std::error::Error for JobSpecError {}

impl JobSpec {
    /// Check internal consistency: the declared envelope must cover the
    /// profile (the paper assumes users declare *maximums*, §IV-B).
    pub fn validate(&self) -> Result<(), JobSpecError> {
        if self.profile.segments.is_empty() {
            return Err(JobSpecError::EmptyProfile);
        }
        if self.mem_req_mb == 0 {
            return Err(JobSpecError::ZeroDeclaredMemory);
        }
        let offloads = self.profile.offload_count();
        if offloads > 0 && self.thread_req == 0 {
            return Err(JobSpecError::ZeroDeclaredThreads);
        }
        for s in &self.profile.segments {
            if let Segment::Offload { threads, .. } = *s {
                if threads == 0 {
                    return Err(JobSpecError::ZeroThreadOffload);
                }
                if threads > self.thread_req {
                    return Err(JobSpecError::ThreadsExceedDeclared {
                        threads,
                        declared: self.thread_req,
                    });
                }
            }
        }
        Ok(())
    }

    /// Total nominal duration of the job's profile.
    pub fn nominal_duration(&self) -> SimDuration {
        self.profile.total_nominal()
    }

    /// True when the job's actual peak stays within its declared limit.
    pub fn well_behaved(&self) -> bool {
        self.actual_peak_mem_mb <= self.mem_req_mb
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secs(s: u64) -> SimDuration {
        SimDuration::from_secs(s)
    }

    fn job(profile: JobProfile, mem: u64, threads: u32) -> JobSpec {
        JobSpec {
            id: JobId(1),
            name: "test".into(),
            app: AppKind::KM,
            mem_req_mb: mem,
            thread_req: threads,
            actual_peak_mem_mb: mem,
            profile,
        }
    }

    #[test]
    fn profile_aggregates() {
        let p = JobProfile::new(vec![
            Segment::host(secs(2)),
            Segment::offload(120, secs(6)),
            Segment::host(secs(2)),
            Segment::offload(60, secs(2)),
        ]);
        assert_eq!(p.total_nominal(), secs(12));
        assert_eq!(p.offload_fraction(), 8.0 / 12.0);
        assert_eq!(p.max_threads(), 120);
        assert_eq!(p.offload_count(), 2);
    }

    #[test]
    fn empty_profile_fraction_is_zero() {
        assert_eq!(JobProfile::default().offload_fraction(), 0.0);
        assert_eq!(JobProfile::default().max_threads(), 0);
    }

    #[test]
    fn validation_accepts_consistent_job() {
        let p = JobProfile::new(vec![Segment::host(secs(1)), Segment::offload(60, secs(3))]);
        assert!(job(p, 500, 60).validate().is_ok());
    }

    #[test]
    fn validation_rejects_inconsistencies() {
        let p = JobProfile::new(vec![Segment::offload(120, secs(1))]);
        assert_eq!(
            job(p.clone(), 500, 60).validate(),
            Err(JobSpecError::ThreadsExceedDeclared {
                threads: 120,
                declared: 60
            })
        );
        assert_eq!(
            job(JobProfile::default(), 500, 60).validate(),
            Err(JobSpecError::EmptyProfile)
        );
        assert_eq!(
            job(p.clone(), 0, 120).validate(),
            Err(JobSpecError::ZeroDeclaredMemory)
        );
        assert_eq!(
            job(p, 500, 0).validate(),
            Err(JobSpecError::ZeroDeclaredThreads)
        );
        let zero_thread = JobProfile::new(vec![Segment::offload(0, secs(1))]);
        // Declared threads nonzero, but the segment itself is malformed.
        assert_eq!(
            job(zero_thread, 500, 60).validate(),
            Err(JobSpecError::ZeroThreadOffload)
        );
    }

    #[test]
    fn well_behaved_flags_overrun() {
        let p = JobProfile::new(vec![Segment::offload(60, secs(1))]);
        let mut j = job(p, 500, 60);
        assert!(j.well_behaved());
        j.actual_peak_mem_mb = 600;
        assert!(!j.well_behaved());
    }

    #[test]
    fn error_display_is_informative() {
        let e = JobSpecError::ThreadsExceedDeclared {
            threads: 240,
            declared: 60,
        };
        assert!(e.to_string().contains("240"));
        assert!(e.to_string().contains("60"));
    }
}
