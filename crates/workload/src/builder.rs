//! Workload assembly: job sets, arrival processes, (de)serialization.

use crate::ids::JobId;
use crate::job::JobSpec;
use crate::synthetic::{ResourceDist, SyntheticParams};
use crate::table1::AppKind;
use phishare_sim::{DetRng, SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// What family of jobs a workload draws from.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WorkloadKind {
    /// A uniform mix over the seven Table I applications (the paper's
    /// "1000 independent job instances from Table I").
    Table1Mix,
    /// One Table I application only.
    Table1Single(AppKind),
    /// Synthetic jobs following a Fig. 7 distribution.
    Synthetic(ResourceDist, SyntheticParams),
}

/// When jobs enter the queue.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ArrivalProcess {
    /// The whole job set is pending at time zero (the paper's static
    /// formulation, §IV-D "Limitations").
    AllAtZero,
    /// Poisson arrivals with the given mean inter-arrival gap (the paper's
    /// "dynamic context" future-work scenario).
    Poisson {
        /// Mean gap between consecutive arrivals.
        mean_gap: SimDuration,
    },
}

/// A fully generated workload: jobs plus their arrival times.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Workload {
    /// Descriptive label (used in experiment reports).
    pub label: String,
    /// The jobs, in arrival order.
    pub jobs: Vec<JobSpec>,
    /// Arrival instant of each job (parallel to `jobs`).
    pub arrivals: Vec<SimTime>,
    /// Seed the workload was generated from (for provenance).
    pub seed: u64,
}

impl Workload {
    /// Number of jobs.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// True when the workload has no jobs.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Sum of declared memory over all jobs, in MB.
    pub fn total_declared_mem_mb(&self) -> u64 {
        self.jobs.iter().map(|j| j.mem_req_mb).sum()
    }

    /// Sum of nominal durations over all jobs.
    pub fn total_nominal(&self) -> SimDuration {
        self.jobs
            .iter()
            .fold(SimDuration::ZERO, |acc, j| acc + j.nominal_duration())
    }

    /// Validate every job in the workload.
    pub fn validate(&self) -> Result<(), (JobId, crate::job::JobSpecError)> {
        assert_eq!(
            self.jobs.len(),
            self.arrivals.len(),
            "arrivals must parallel jobs"
        );
        for j in &self.jobs {
            j.validate().map_err(|e| (j.id, e))?;
        }
        Ok(())
    }

    /// Serialize to a JSON string (for caching generated workloads and for
    /// EXPERIMENTS.md provenance).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("workload serialization cannot fail")
    }

    /// Deserialize from the JSON produced by [`Workload::to_json`].
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }
}

/// Builder for reproducible workloads.
///
/// ```
/// use phishare_workload::{WorkloadBuilder, WorkloadKind};
///
/// let wl = WorkloadBuilder::new(WorkloadKind::Table1Mix)
///     .count(100)
///     .seed(42)
///     .build();
/// assert_eq!(wl.len(), 100);
/// assert!(wl.validate().is_ok());
/// ```
#[derive(Debug, Clone)]
pub struct WorkloadBuilder {
    kind: WorkloadKind,
    count: usize,
    seed: u64,
    arrivals: ArrivalProcess,
    /// Fraction of jobs whose actual peak memory exceeds their declaration
    /// (failure injection; exercises container kills / OOM paths).
    misbehaving_fraction: f64,
    /// Starting job id (lets several workloads coexist in one simulation).
    first_id: u64,
}

impl WorkloadBuilder {
    /// Start a builder for the given workload kind.
    pub fn new(kind: WorkloadKind) -> Self {
        WorkloadBuilder {
            kind,
            count: 100,
            seed: 0,
            arrivals: ArrivalProcess::AllAtZero,
            misbehaving_fraction: 0.0,
            first_id: 0,
        }
    }

    /// Set the number of jobs (paper: 1000 real, 400/1600 synthetic).
    pub fn count(mut self, count: usize) -> Self {
        self.count = count;
        self
    }

    /// Set the master seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Set the arrival process.
    pub fn arrivals(mut self, arrivals: ArrivalProcess) -> Self {
        self.arrivals = arrivals;
        self
    }

    /// Inject jobs that under-declare memory (actual peak 1.1–1.5× declared).
    pub fn misbehaving_fraction(mut self, fraction: f64) -> Self {
        assert!((0.0..=1.0).contains(&fraction));
        self.misbehaving_fraction = fraction;
        self
    }

    /// Set the first job id.
    pub fn first_id(mut self, first: u64) -> Self {
        self.first_id = first;
        self
    }

    /// Generate the workload.
    pub fn build(&self) -> Workload {
        let mut jobs = Vec::with_capacity(self.count);
        for i in 0..self.count {
            let id = JobId(self.first_id + i as u64);
            // Per-job substream: adding/removing jobs never shifts the
            // randomness of other jobs.
            let mut rng = DetRng::substream_indexed(self.seed, "workload-job", id.raw());
            let mut job = match &self.kind {
                WorkloadKind::Table1Mix => {
                    let app = *rng.choose(&AppKind::TABLE1);
                    app.generate(id, &mut rng)
                }
                WorkloadKind::Table1Single(app) => app.generate(id, &mut rng),
                WorkloadKind::Synthetic(dist, params) => params.generate(*dist, id, &mut rng),
            };
            if self.misbehaving_fraction > 0.0 && rng.chance(self.misbehaving_fraction) {
                job.actual_peak_mem_mb =
                    ((job.mem_req_mb as f64) * rng.uniform_range(1.1, 1.5)).round() as u64;
            }
            jobs.push(job);
        }

        let mut arrivals = Vec::with_capacity(self.count);
        match self.arrivals {
            ArrivalProcess::AllAtZero => {
                arrivals.resize(self.count, SimTime::ZERO);
            }
            ArrivalProcess::Poisson { mean_gap } => {
                let mut rng = DetRng::substream(self.seed, "workload-arrivals");
                let mut t = SimTime::ZERO;
                for _ in 0..self.count {
                    t += SimDuration::from_secs_f64(rng.exponential(mean_gap.as_secs_f64()));
                    arrivals.push(t);
                }
            }
        }

        let label = match &self.kind {
            WorkloadKind::Table1Mix => format!("table1-mix×{}", self.count),
            WorkloadKind::Table1Single(app) => format!("{app}×{}", self.count),
            WorkloadKind::Synthetic(dist, _) => format!("syn-{dist}×{}", self.count),
        };
        Workload {
            label,
            jobs,
            arrivals,
            seed: self.seed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_mix_covers_all_apps() {
        let wl = WorkloadBuilder::new(WorkloadKind::Table1Mix)
            .count(200)
            .seed(1)
            .build();
        wl.validate().unwrap();
        for app in AppKind::TABLE1 {
            assert!(
                wl.jobs.iter().any(|j| j.app == app),
                "app {app} missing from 200-job mix"
            );
        }
        assert!(wl.arrivals.iter().all(|t| *t == SimTime::ZERO));
    }

    #[test]
    fn builds_are_deterministic() {
        let b = WorkloadBuilder::new(WorkloadKind::Table1Mix)
            .count(50)
            .seed(9);
        assert_eq!(b.build(), b.build());
    }

    #[test]
    fn different_seeds_differ() {
        let a = WorkloadBuilder::new(WorkloadKind::Table1Mix)
            .count(50)
            .seed(1)
            .build();
        let b = WorkloadBuilder::new(WorkloadKind::Table1Mix)
            .count(50)
            .seed(2)
            .build();
        assert_ne!(a, b);
    }

    #[test]
    fn growing_count_preserves_prefix() {
        // Per-job substreams: job i is identical whether we generate 10 or
        // 100 jobs.
        let small = WorkloadBuilder::new(WorkloadKind::Table1Mix)
            .count(10)
            .seed(5)
            .build();
        let large = WorkloadBuilder::new(WorkloadKind::Table1Mix)
            .count(100)
            .seed(5)
            .build();
        assert_eq!(&large.jobs[..10], &small.jobs[..]);
    }

    #[test]
    fn poisson_arrivals_are_increasing() {
        let wl = WorkloadBuilder::new(WorkloadKind::Table1Mix)
            .count(100)
            .seed(3)
            .arrivals(ArrivalProcess::Poisson {
                mean_gap: SimDuration::from_secs(2),
            })
            .build();
        for pair in wl.arrivals.windows(2) {
            assert!(pair[0] <= pair[1]);
        }
        let last = wl.arrivals.last().unwrap().as_secs_f64();
        // 100 gaps of mean 2 s ≈ 200 s; allow wide tolerance.
        assert!(last > 80.0 && last < 500.0, "last arrival {last}");
    }

    #[test]
    fn misbehaving_jobs_overrun_their_declaration() {
        let wl = WorkloadBuilder::new(WorkloadKind::Table1Mix)
            .count(300)
            .seed(4)
            .misbehaving_fraction(0.3)
            .build();
        let bad = wl.jobs.iter().filter(|j| !j.well_behaved()).count();
        assert!(
            (50..=130).contains(&bad),
            "expected ≈90 misbehaving jobs, got {bad}"
        );
    }

    #[test]
    fn synthetic_kind_builds() {
        let wl = WorkloadBuilder::new(WorkloadKind::Synthetic(
            ResourceDist::HighSkew,
            SyntheticParams::default(),
        ))
        .count(400)
        .seed(6)
        .build();
        wl.validate().unwrap();
        assert_eq!(wl.len(), 400);
        assert!(wl.label.contains("high-skew"));
    }

    #[test]
    fn json_round_trip() {
        let wl = WorkloadBuilder::new(WorkloadKind::Table1Mix)
            .count(20)
            .seed(8)
            .build();
        let json = wl.to_json();
        let back = Workload::from_json(&json).unwrap();
        assert_eq!(wl, back);
    }

    #[test]
    fn first_id_offsets_ids() {
        let wl = WorkloadBuilder::new(WorkloadKind::Table1Mix)
            .count(5)
            .first_id(100)
            .build();
        assert_eq!(wl.jobs[0].id, JobId(100));
        assert_eq!(wl.jobs[4].id, JobId(104));
    }

    #[test]
    fn aggregates_are_positive() {
        let wl = WorkloadBuilder::new(WorkloadKind::Table1Mix)
            .count(10)
            .seed(2)
            .build();
        assert!(wl.total_declared_mem_mb() > 0);
        assert!(wl.total_nominal() > SimDuration::ZERO);
        assert!(!wl.is_empty());
    }
}
