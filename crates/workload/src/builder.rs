//! Workload assembly: job sets, arrival processes, (de)serialization.

use crate::ids::JobId;
use crate::job::JobSpec;
use crate::synthetic::{ResourceDist, SyntheticParams};
use crate::table1::AppKind;
use phishare_sim::{DetRng, SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// What family of jobs a workload draws from.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WorkloadKind {
    /// A uniform mix over the seven Table I applications (the paper's
    /// "1000 independent job instances from Table I").
    Table1Mix,
    /// One Table I application only.
    Table1Single(AppKind),
    /// Synthetic jobs following a Fig. 7 distribution.
    Synthetic(ResourceDist, SyntheticParams),
}

/// When jobs enter the queue.
///
/// The trace-replay families (`Diurnal`, `Bursty`, `FlashCrowd`) model the
/// arrival shapes a production scheduler actually sees; all of them draw
/// from the same `"workload-arrivals"` substream as `Poisson`, so a
/// workload is bit-reproducible from its seed regardless of family.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ArrivalProcess {
    /// The whole job set is pending at time zero (the paper's static
    /// formulation, §IV-D "Limitations").
    AllAtZero,
    /// Poisson arrivals with the given mean inter-arrival gap (the paper's
    /// "dynamic context" future-work scenario).
    Poisson {
        /// Mean gap between consecutive arrivals.
        mean_gap: SimDuration,
    },
    /// Non-homogeneous Poisson whose intensity swings sinusoidally around
    /// the base rate — a compressed day/night load cycle.
    Diurnal {
        /// Mean gap at the baseline intensity.
        mean_gap: SimDuration,
        /// Length of one full intensity cycle.
        period: SimDuration,
        /// Swing around the baseline, in `[0, 1)`: intensity at time `t`
        /// is `1 + amplitude * sin(2πt / period)`.
        amplitude: f64,
    },
    /// Arrivals come in bursts: burst heads are Poisson with `mean_gap`,
    /// each head trailed by `burst_size - 1` followers separated by
    /// exponential gaps of mean `burst_gap`.
    Bursty {
        /// Mean gap between the end of one burst and the next head.
        mean_gap: SimDuration,
        /// Jobs per burst (1 degenerates to plain Poisson).
        burst_size: u32,
        /// Mean gap between jobs inside a burst.
        burst_gap: SimDuration,
    },
    /// Baseline Poisson with `mean_gap`, except `crowd_fraction` of the
    /// jobs all pile up at instant `at` (a flash crowd / thundering herd).
    FlashCrowd {
        /// Mean gap of the baseline arrivals.
        mean_gap: SimDuration,
        /// Instant the crowd lands.
        at: SimTime,
        /// Fraction of the job count in the crowd, in `[0, 1]`.
        crowd_fraction: f64,
    },
}

impl ArrivalProcess {
    /// Generate `count` non-decreasing arrival instants from `seed`.
    ///
    /// Every stochastic family draws from the `"workload-arrivals"`
    /// substream; `AllAtZero` draws nothing, so workloads that never asked
    /// for arrivals stay bit-identical to historical ones.
    pub fn generate(&self, seed: u64, count: usize) -> Vec<SimTime> {
        let mut arrivals = Vec::with_capacity(count);
        match *self {
            ArrivalProcess::AllAtZero => {
                arrivals.resize(count, SimTime::ZERO);
            }
            ArrivalProcess::Poisson { mean_gap } => {
                let mut rng = DetRng::substream(seed, "workload-arrivals");
                let mut t = SimTime::ZERO;
                for _ in 0..count {
                    t += SimDuration::from_secs_f64(rng.exponential(mean_gap.as_secs_f64()));
                    arrivals.push(t);
                }
            }
            ArrivalProcess::Diurnal {
                mean_gap,
                period,
                amplitude,
            } => {
                debug_assert!((0.0..1.0).contains(&amplitude), "amplitude in [0, 1)");
                let mut rng = DetRng::substream(seed, "workload-arrivals");
                let mut t = SimTime::ZERO;
                let omega = std::f64::consts::TAU / period.as_secs_f64();
                for _ in 0..count {
                    let intensity = 1.0 + amplitude * (omega * t.as_secs_f64()).sin();
                    let gap = rng.exponential(mean_gap.as_secs_f64() / intensity);
                    t += SimDuration::from_secs_f64(gap);
                    arrivals.push(t);
                }
            }
            ArrivalProcess::Bursty {
                mean_gap,
                burst_size,
                burst_gap,
            } => {
                let mut rng = DetRng::substream(seed, "workload-arrivals");
                let mut t = SimTime::ZERO;
                let per_burst = burst_size.max(1) as usize;
                while arrivals.len() < count {
                    t += SimDuration::from_secs_f64(rng.exponential(mean_gap.as_secs_f64()));
                    arrivals.push(t);
                    for _ in 1..per_burst {
                        if arrivals.len() == count {
                            break;
                        }
                        t += SimDuration::from_secs_f64(rng.exponential(burst_gap.as_secs_f64()));
                        arrivals.push(t);
                    }
                }
            }
            ArrivalProcess::FlashCrowd {
                mean_gap,
                at,
                crowd_fraction,
            } => {
                debug_assert!(
                    (0.0..=1.0).contains(&crowd_fraction),
                    "crowd_fraction in [0, 1]"
                );
                let mut rng = DetRng::substream(seed, "workload-arrivals");
                let mut t = SimTime::ZERO;
                for _ in 0..count {
                    t += SimDuration::from_secs_f64(rng.exponential(mean_gap.as_secs_f64()));
                    arrivals.push(t);
                }
                // The crowd takes over the tail of the baseline sequence;
                // re-sorting restores arrival order (job specs are drawn
                // from per-job substreams, so reassigning instants to
                // indices is harmless).
                let crowd = ((count as f64) * crowd_fraction).ceil() as usize;
                let start = count.saturating_sub(crowd);
                for slot in arrivals[start..].iter_mut() {
                    *slot = at;
                }
                arrivals.sort_unstable();
            }
        }
        arrivals
    }
}

impl std::str::FromStr for ArrivalProcess {
    type Err = String;

    /// Parse CLI specs: `zero`, `poisson:GAP`, `diurnal:GAP:PERIOD:AMP`,
    /// `bursty:GAP:SIZE:BURST_GAP`, `flash:GAP:AT:FRACTION` (all times in
    /// seconds).
    fn from_str(s: &str) -> Result<Self, String> {
        let parts: Vec<&str> = s.split(':').collect();
        let nums = |want: usize| -> Result<Vec<f64>, String> {
            if parts.len() != want + 1 {
                return Err(format!(
                    "arrival spec `{s}`: expected {want} parameters after `{}`",
                    parts[0]
                ));
            }
            parts[1..]
                .iter()
                .map(|p| {
                    p.parse::<f64>()
                        .map_err(|e| format!("arrival spec `{s}`: bad number {p:?}: {e}"))
                })
                .collect()
        };
        let positive = |name: &str, v: f64| -> Result<f64, String> {
            if !v.is_finite() || v <= 0.0 {
                return Err(format!("arrival spec `{s}`: {name} must be positive"));
            }
            Ok(v)
        };
        match parts[0] {
            "zero" => {
                nums(0)?;
                Ok(ArrivalProcess::AllAtZero)
            }
            "poisson" => {
                let v = nums(1)?;
                Ok(ArrivalProcess::Poisson {
                    mean_gap: SimDuration::from_secs_f64(positive("gap", v[0])?),
                })
            }
            "diurnal" => {
                let v = nums(3)?;
                if !(0.0..1.0).contains(&v[2]) {
                    return Err(format!("arrival spec `{s}`: amplitude must be in [0, 1)"));
                }
                Ok(ArrivalProcess::Diurnal {
                    mean_gap: SimDuration::from_secs_f64(positive("gap", v[0])?),
                    period: SimDuration::from_secs_f64(positive("period", v[1])?),
                    amplitude: v[2],
                })
            }
            "bursty" => {
                let v = nums(3)?;
                if v[1].fract() != 0.0 || !(1.0..=10_000.0).contains(&v[1]) {
                    return Err(format!(
                        "arrival spec `{s}`: burst size must be an integer >= 1"
                    ));
                }
                Ok(ArrivalProcess::Bursty {
                    mean_gap: SimDuration::from_secs_f64(positive("gap", v[0])?),
                    burst_size: v[1] as u32,
                    burst_gap: SimDuration::from_secs_f64(positive("burst gap", v[2])?),
                })
            }
            "flash" => {
                let v = nums(3)?;
                if !v[1].is_finite() || v[1] < 0.0 {
                    return Err(format!("arrival spec `{s}`: crowd instant must be >= 0"));
                }
                if !(0.0..=1.0).contains(&v[2]) {
                    return Err(format!(
                        "arrival spec `{s}`: crowd fraction must be in [0, 1]"
                    ));
                }
                Ok(ArrivalProcess::FlashCrowd {
                    mean_gap: SimDuration::from_secs_f64(positive("gap", v[0])?),
                    at: SimTime::ZERO + SimDuration::from_secs_f64(v[1]),
                    crowd_fraction: v[2],
                })
            }
            other => Err(format!(
                "unknown arrival family `{other}` (want zero | poisson | diurnal | bursty | flash)"
            )),
        }
    }
}

/// A fully generated workload: jobs plus their arrival times.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Workload {
    /// Descriptive label (used in experiment reports).
    pub label: String,
    /// The jobs, in arrival order.
    pub jobs: Vec<JobSpec>,
    /// Arrival instant of each job (parallel to `jobs`).
    pub arrivals: Vec<SimTime>,
    /// Seed the workload was generated from (for provenance).
    pub seed: u64,
}

impl Workload {
    /// Number of jobs.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// True when the workload has no jobs.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Sum of declared memory over all jobs, in MB.
    pub fn total_declared_mem_mb(&self) -> u64 {
        self.jobs.iter().map(|j| j.mem_req_mb).sum()
    }

    /// Sum of nominal durations over all jobs.
    pub fn total_nominal(&self) -> SimDuration {
        self.jobs
            .iter()
            .fold(SimDuration::ZERO, |acc, j| acc + j.nominal_duration())
    }

    /// Validate every job in the workload.
    pub fn validate(&self) -> Result<(), (JobId, crate::job::JobSpecError)> {
        assert_eq!(
            self.jobs.len(),
            self.arrivals.len(),
            "arrivals must parallel jobs"
        );
        for j in &self.jobs {
            j.validate().map_err(|e| (j.id, e))?;
        }
        Ok(())
    }

    /// Serialize to a JSON string (for caching generated workloads and for
    /// EXPERIMENTS.md provenance).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("workload serialization cannot fail")
    }

    /// Deserialize from the JSON produced by [`Workload::to_json`].
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }
}

/// Builder for reproducible workloads.
///
/// ```
/// use phishare_workload::{WorkloadBuilder, WorkloadKind};
///
/// let wl = WorkloadBuilder::new(WorkloadKind::Table1Mix)
///     .count(100)
///     .seed(42)
///     .build();
/// assert_eq!(wl.len(), 100);
/// assert!(wl.validate().is_ok());
/// ```
#[derive(Debug, Clone)]
pub struct WorkloadBuilder {
    kind: WorkloadKind,
    count: usize,
    seed: u64,
    arrivals: ArrivalProcess,
    /// Fraction of jobs whose actual peak memory exceeds their declaration
    /// (failure injection; exercises container kills / OOM paths).
    misbehaving_fraction: f64,
    /// Starting job id (lets several workloads coexist in one simulation).
    first_id: u64,
    /// Mid-run mix shift: jobs from this fraction point onward draw from
    /// the alternate kind instead (trace replay of a job-size-mix change).
    mix_shift: Option<(f64, WorkloadKind)>,
}

impl WorkloadBuilder {
    /// Start a builder for the given workload kind.
    pub fn new(kind: WorkloadKind) -> Self {
        WorkloadBuilder {
            kind,
            count: 100,
            seed: 0,
            arrivals: ArrivalProcess::AllAtZero,
            misbehaving_fraction: 0.0,
            first_id: 0,
            mix_shift: None,
        }
    }

    /// Set the number of jobs (paper: 1000 real, 400/1600 synthetic).
    pub fn count(mut self, count: usize) -> Self {
        self.count = count;
        self
    }

    /// Set the master seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Set the arrival process.
    pub fn arrivals(mut self, arrivals: ArrivalProcess) -> Self {
        self.arrivals = arrivals;
        self
    }

    /// Inject jobs that under-declare memory (actual peak 1.1–1.5× declared).
    pub fn misbehaving_fraction(mut self, fraction: f64) -> Self {
        assert!((0.0..=1.0).contains(&fraction));
        self.misbehaving_fraction = fraction;
        self
    }

    /// Set the first job id.
    pub fn first_id(mut self, first: u64) -> Self {
        self.first_id = first;
        self
    }

    /// Switch the job mix at a fraction point: jobs with index
    /// `>= fraction * count` draw from `kind` instead of the primary kind.
    ///
    /// Per-job substreams are untouched, so the pre-shift prefix is
    /// bit-identical to the unshifted workload.
    pub fn mix_shift(mut self, fraction: f64, kind: WorkloadKind) -> Self {
        assert!((0.0..=1.0).contains(&fraction));
        self.mix_shift = Some((fraction, kind));
        self
    }

    /// Generate the workload.
    pub fn build(&self) -> Workload {
        let shift_at = self
            .mix_shift
            .as_ref()
            .map(|(fraction, _)| ((self.count as f64) * fraction).ceil() as usize);
        let mut jobs = Vec::with_capacity(self.count);
        for i in 0..self.count {
            let id = JobId(self.first_id + i as u64);
            // Per-job substream: adding/removing jobs never shifts the
            // randomness of other jobs.
            let mut rng = DetRng::substream_indexed(self.seed, "workload-job", id.raw());
            let kind = match (&self.mix_shift, shift_at) {
                (Some((_, shifted)), Some(at)) if i >= at => shifted,
                _ => &self.kind,
            };
            let mut job = match kind {
                WorkloadKind::Table1Mix => {
                    let app = *rng.choose(&AppKind::TABLE1);
                    app.generate(id, &mut rng)
                }
                WorkloadKind::Table1Single(app) => app.generate(id, &mut rng),
                WorkloadKind::Synthetic(dist, params) => params.generate(*dist, id, &mut rng),
            };
            if self.misbehaving_fraction > 0.0 && rng.chance(self.misbehaving_fraction) {
                job.actual_peak_mem_mb =
                    ((job.mem_req_mb as f64) * rng.uniform_range(1.1, 1.5)).round() as u64;
            }
            jobs.push(job);
        }

        let arrivals = self.arrivals.generate(self.seed, self.count);

        let kind_label = |kind: &WorkloadKind| match kind {
            WorkloadKind::Table1Mix => "table1-mix".to_string(),
            WorkloadKind::Table1Single(app) => format!("{app}"),
            WorkloadKind::Synthetic(dist, _) => format!("syn-{dist}"),
        };
        let mut label = format!("{}×{}", kind_label(&self.kind), self.count);
        if let Some((fraction, shifted)) = &self.mix_shift {
            label = format!("{label}→{}@{fraction}", kind_label(shifted));
        }
        Workload {
            label,
            jobs,
            arrivals,
            seed: self.seed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_mix_covers_all_apps() {
        let wl = WorkloadBuilder::new(WorkloadKind::Table1Mix)
            .count(200)
            .seed(1)
            .build();
        wl.validate().unwrap();
        for app in AppKind::TABLE1 {
            assert!(
                wl.jobs.iter().any(|j| j.app == app),
                "app {app} missing from 200-job mix"
            );
        }
        assert!(wl.arrivals.iter().all(|t| *t == SimTime::ZERO));
    }

    #[test]
    fn builds_are_deterministic() {
        let b = WorkloadBuilder::new(WorkloadKind::Table1Mix)
            .count(50)
            .seed(9);
        assert_eq!(b.build(), b.build());
    }

    #[test]
    fn different_seeds_differ() {
        let a = WorkloadBuilder::new(WorkloadKind::Table1Mix)
            .count(50)
            .seed(1)
            .build();
        let b = WorkloadBuilder::new(WorkloadKind::Table1Mix)
            .count(50)
            .seed(2)
            .build();
        assert_ne!(a, b);
    }

    #[test]
    fn growing_count_preserves_prefix() {
        // Per-job substreams: job i is identical whether we generate 10 or
        // 100 jobs.
        let small = WorkloadBuilder::new(WorkloadKind::Table1Mix)
            .count(10)
            .seed(5)
            .build();
        let large = WorkloadBuilder::new(WorkloadKind::Table1Mix)
            .count(100)
            .seed(5)
            .build();
        assert_eq!(&large.jobs[..10], &small.jobs[..]);
    }

    #[test]
    fn poisson_arrivals_are_increasing() {
        let wl = WorkloadBuilder::new(WorkloadKind::Table1Mix)
            .count(100)
            .seed(3)
            .arrivals(ArrivalProcess::Poisson {
                mean_gap: SimDuration::from_secs(2),
            })
            .build();
        for pair in wl.arrivals.windows(2) {
            assert!(pair[0] <= pair[1]);
        }
        let last = wl.arrivals.last().unwrap().as_secs_f64();
        // 100 gaps of mean 2 s ≈ 200 s; allow wide tolerance.
        assert!(last > 80.0 && last < 500.0, "last arrival {last}");
    }

    #[test]
    fn trace_replay_arrivals_are_increasing_and_deterministic() {
        let families = [
            ArrivalProcess::Diurnal {
                mean_gap: SimDuration::from_secs(2),
                period: SimDuration::from_secs(60),
                amplitude: 0.8,
            },
            ArrivalProcess::Bursty {
                mean_gap: SimDuration::from_secs(10),
                burst_size: 5,
                burst_gap: SimDuration::from_millis(200),
            },
            ArrivalProcess::FlashCrowd {
                mean_gap: SimDuration::from_secs(2),
                at: SimTime::from_secs(30),
                crowd_fraction: 0.3,
            },
        ];
        for family in families {
            let build = || {
                WorkloadBuilder::new(WorkloadKind::Table1Mix)
                    .count(100)
                    .seed(14)
                    .arrivals(family)
                    .build()
            };
            let wl = build();
            wl.validate().unwrap();
            assert_eq!(wl, build(), "{family:?} not deterministic");
            for pair in wl.arrivals.windows(2) {
                assert!(pair[0] <= pair[1], "{family:?} out of order");
            }
            assert!(
                *wl.arrivals.last().unwrap() > SimTime::ZERO,
                "{family:?} degenerate"
            );
        }
    }

    #[test]
    fn flash_crowd_piles_up_at_the_instant() {
        let at = SimTime::from_secs(30);
        let wl = WorkloadBuilder::new(WorkloadKind::Table1Mix)
            .count(100)
            .seed(15)
            .arrivals(ArrivalProcess::FlashCrowd {
                mean_gap: SimDuration::from_secs(2),
                at,
                crowd_fraction: 0.4,
            })
            .build();
        let crowd = wl.arrivals.iter().filter(|t| **t == at).count();
        assert!(crowd >= 40, "only {crowd} jobs in the crowd");
    }

    #[test]
    fn bursty_arrivals_cluster() {
        let wl = WorkloadBuilder::new(WorkloadKind::Table1Mix)
            .count(100)
            .seed(16)
            .arrivals(ArrivalProcess::Bursty {
                mean_gap: SimDuration::from_secs(60),
                burst_size: 10,
                burst_gap: SimDuration::from_millis(100),
            })
            .build();
        // Most consecutive gaps are intra-burst (~0.1 s), far below the
        // 60 s head gap.
        let small = wl
            .arrivals
            .windows(2)
            .filter(|p| (p[1] - p[0]).as_secs_f64() < 1.0)
            .count();
        assert!(small >= 80, "only {small} intra-burst gaps");
    }

    #[test]
    fn mix_shift_changes_the_tail_and_preserves_the_prefix() {
        let plain = WorkloadBuilder::new(WorkloadKind::Table1Mix)
            .count(40)
            .seed(17)
            .build();
        let shifted = WorkloadBuilder::new(WorkloadKind::Table1Mix)
            .count(40)
            .seed(17)
            .mix_shift(0.5, WorkloadKind::Table1Single(AppKind::TABLE1[0]))
            .build();
        shifted.validate().unwrap();
        assert_eq!(&shifted.jobs[..20], &plain.jobs[..20]);
        assert!(shifted.jobs[20..]
            .iter()
            .all(|j| j.app == AppKind::TABLE1[0]));
        assert!(shifted.label.contains('→'), "{}", shifted.label);
    }

    #[test]
    fn arrival_specs_parse() {
        use std::str::FromStr;
        assert_eq!(
            ArrivalProcess::from_str("zero").unwrap(),
            ArrivalProcess::AllAtZero
        );
        assert_eq!(
            ArrivalProcess::from_str("poisson:2.5").unwrap(),
            ArrivalProcess::Poisson {
                mean_gap: SimDuration::from_secs_f64(2.5)
            }
        );
        assert_eq!(
            ArrivalProcess::from_str("diurnal:2:120:0.7").unwrap(),
            ArrivalProcess::Diurnal {
                mean_gap: SimDuration::from_secs(2),
                period: SimDuration::from_secs(120),
                amplitude: 0.7,
            }
        );
        assert_eq!(
            ArrivalProcess::from_str("bursty:30:8:0.2").unwrap(),
            ArrivalProcess::Bursty {
                mean_gap: SimDuration::from_secs(30),
                burst_size: 8,
                burst_gap: SimDuration::from_secs_f64(0.2),
            }
        );
        assert_eq!(
            ArrivalProcess::from_str("flash:2:45:0.3").unwrap(),
            ArrivalProcess::FlashCrowd {
                mean_gap: SimDuration::from_secs(2),
                at: SimTime::from_secs(45),
                crowd_fraction: 0.3,
            }
        );
        for bad in [
            "",
            "poisson",
            "poisson:0",
            "poisson:x",
            "diurnal:2:120:1.5",
            "bursty:30:0:0.2",
            "bursty:30:2.5:0.2",
            "flash:2:45:1.5",
            "flash:2:-1:0.3",
            "weibull:1",
        ] {
            assert!(ArrivalProcess::from_str(bad).is_err(), "{bad:?} parsed");
        }
    }

    #[test]
    fn misbehaving_jobs_overrun_their_declaration() {
        let wl = WorkloadBuilder::new(WorkloadKind::Table1Mix)
            .count(300)
            .seed(4)
            .misbehaving_fraction(0.3)
            .build();
        let bad = wl.jobs.iter().filter(|j| !j.well_behaved()).count();
        assert!(
            (50..=130).contains(&bad),
            "expected ≈90 misbehaving jobs, got {bad}"
        );
    }

    #[test]
    fn synthetic_kind_builds() {
        let wl = WorkloadBuilder::new(WorkloadKind::Synthetic(
            ResourceDist::HighSkew,
            SyntheticParams::default(),
        ))
        .count(400)
        .seed(6)
        .build();
        wl.validate().unwrap();
        assert_eq!(wl.len(), 400);
        assert!(wl.label.contains("high-skew"));
    }

    #[test]
    fn json_round_trip() {
        let wl = WorkloadBuilder::new(WorkloadKind::Table1Mix)
            .count(20)
            .seed(8)
            .build();
        let json = wl.to_json();
        let back = Workload::from_json(&json).unwrap();
        assert_eq!(wl, back);
    }

    #[test]
    fn first_id_offsets_ids() {
        let wl = WorkloadBuilder::new(WorkloadKind::Table1Mix)
            .count(5)
            .first_id(100)
            .build();
        assert_eq!(wl.jobs[0].id, JobId(100));
        assert_eq!(wl.jobs[4].id, JobId(104));
    }

    #[test]
    fn aggregates_are_positive() {
        let wl = WorkloadBuilder::new(WorkloadKind::Table1Mix)
            .count(10)
            .seed(2)
            .build();
        assert!(wl.total_declared_mem_mb() > 0);
        assert!(wl.total_nominal() > SimDuration::ZERO);
        assert!(!wl.is_empty());
    }
}
