//! Identifier types shared across the scheduling stack.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A cluster-wide unique job identifier.
///
/// Mirrors a Condor cluster/proc id collapsed to a single integer; display
/// form is `J<n>`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct JobId(pub u64);

impl JobId {
    /// The raw integer id.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "J{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_ordering() {
        assert_eq!(JobId(17).to_string(), "J17");
        assert!(JobId(1) < JobId(2));
        assert_eq!(JobId(5).raw(), 5);
    }
}
