//! The seven real Xeon Phi applications of the paper's Table I.
//!
//! | Name | Threads | Memory (MB) | Description |
//! |------|---------|-------------|-------------|
//! | KM | 60  | 300–1250 | K-means, Lloyd clustering |
//! | MC | 180 | 400–650  | Monte Carlo path simulation |
//! | MD | 180 | 300–750  | Molecular dynamics |
//! | SG | 60  | 500–3400 | Repeated SGEMM |
//! | BT | 240 | 300–1250 | NAS BT (block tri-diagonal CFD) |
//! | SP | 180 | 300–1850 | NAS SP (scalar penta-diagonal CFD) |
//! | LU | 180 | 400–1250 | NAS LU (lower-upper Gauss–Seidel CFD) |
//!
//! The paper measures exclusive-mode core utilization of ≈ 50 % on a 1000-job
//! mix of these (§III). Per-application offload duty cycles below are
//! calibrated so the same measurement on the simulated cluster lands in that
//! band: expected busy-core fraction per app is
//! `duty × ceil(threads/4)/60`, and the seven-app mean is ≈ 0.48.

use crate::ids::JobId;
use crate::job::{JobProfile, JobSpec, Segment};
use phishare_sim::{DetRng, SimDuration};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Which application a job was generated from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AppKind {
    /// K-means clustering (Lloyd).
    KM,
    /// Monte Carlo path simulation.
    MC,
    /// Molecular dynamics.
    MD,
    /// Repeated SGEMM matrix multiplications.
    SG,
    /// NAS BT block tri-diagonal CFD solver.
    BT,
    /// NAS SP scalar penta-diagonal CFD solver.
    SP,
    /// NAS LU Gauss–Seidel CFD solver.
    LU,
    /// Synthetically generated job (Fig. 7 distributions).
    Synthetic,
}

impl fmt::Display for AppKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AppKind::KM => "KM",
            AppKind::MC => "MC",
            AppKind::MD => "MD",
            AppKind::SG => "SG",
            AppKind::BT => "BT",
            AppKind::SP => "SP",
            AppKind::LU => "LU",
            AppKind::Synthetic => "SYN",
        };
        f.write_str(s)
    }
}

impl AppKind {
    /// The seven real Table I applications (excludes `Synthetic`).
    pub const TABLE1: [AppKind; 7] = [
        AppKind::KM,
        AppKind::MC,
        AppKind::MD,
        AppKind::SG,
        AppKind::BT,
        AppKind::SP,
        AppKind::LU,
    ];
}

/// Generation parameters for one Table I application.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AppParams {
    /// Declared thread requirement (Table I "Threads" column).
    pub threads: u32,
    /// Declared memory request range in MB (Table I "Memory" column);
    /// individual instances draw uniformly from this range.
    pub mem_mb: (u64, u64),
    /// Fraction of nominal runtime spent offloaded to the coprocessor.
    pub duty_cycle: f64,
    /// Range of offload segments per job instance.
    pub offloads: (u32, u32),
    /// Range of total nominal job duration in seconds.
    pub duration_secs: (f64, f64),
}

impl AppKind {
    /// Table I parameters for this application.
    ///
    /// # Panics
    /// Panics for [`AppKind::Synthetic`]; synthetic jobs are parameterized by
    /// [`crate::synthetic::SyntheticParams`] instead.
    pub fn params(self) -> AppParams {
        match self {
            AppKind::KM => AppParams {
                threads: 60,
                mem_mb: (300, 1250),
                duty_cycle: 0.70,
                offloads: (6, 12),
                duration_secs: (15.0, 40.0),
            },
            AppKind::MC => AppParams {
                threads: 180,
                mem_mb: (400, 650),
                duty_cycle: 0.80,
                offloads: (4, 8),
                duration_secs: (15.0, 35.0),
            },
            AppKind::MD => AppParams {
                threads: 180,
                mem_mb: (300, 750),
                duty_cycle: 0.75,
                offloads: (4, 8),
                duration_secs: (20.0, 45.0),
            },
            AppKind::SG => AppParams {
                threads: 60,
                mem_mb: (500, 3400),
                duty_cycle: 0.85,
                offloads: (8, 12),
                duration_secs: (20.0, 45.0),
            },
            AppKind::BT => AppParams {
                threads: 240,
                mem_mb: (300, 1250),
                duty_cycle: 0.70,
                offloads: (8, 14),
                duration_secs: (20.0, 50.0),
            },
            AppKind::SP => AppParams {
                threads: 180,
                mem_mb: (300, 1850),
                duty_cycle: 0.75,
                offloads: (8, 14),
                duration_secs: (20.0, 50.0),
            },
            AppKind::LU => AppParams {
                threads: 180,
                mem_mb: (400, 1250),
                duty_cycle: 0.75,
                offloads: (6, 12),
                duration_secs: (20.0, 45.0),
            },
            AppKind::Synthetic => {
                panic!("AppKind::Synthetic has no Table I parameters")
            }
        }
    }

    /// Generate one job instance of this application.
    ///
    /// The generated profile alternates host and offload segments with the
    /// app's duty cycle; segment lengths are jittered; at least one offload
    /// uses the full declared thread count (the declaration is a *maximum*)
    /// while others may use fewer threads — the paper's footnote 1 notes many
    /// kernels saturate below 60 cores.
    pub fn generate(self, id: JobId, rng: &mut DetRng) -> JobSpec {
        let p = self.params();
        let mem_req_mb = rng.uniform_u64(p.mem_mb.0, p.mem_mb.1);
        let total_secs = rng.uniform_range(p.duration_secs.0, p.duration_secs.1);
        let n_offloads = rng.uniform_u64(p.offloads.0 as u64, p.offloads.1 as u64) as usize;
        let profile = build_profile(total_secs, p.duty_cycle, n_offloads, p.threads, rng);
        // Jobs typically commit less than their declared maximum; the
        // declared number is a safe upper bound supplied by the user.
        let actual_peak_mem_mb =
            ((mem_req_mb as f64) * rng.uniform_range(0.75, 1.0)).round() as u64;
        JobSpec {
            id,
            name: format!("{self}-{}", id.raw()),
            app: self,
            mem_req_mb,
            thread_req: p.threads,
            actual_peak_mem_mb: actual_peak_mem_mb.max(1),
            profile,
        }
    }
}

/// Split `total` seconds into `n` jittered positive parts.
fn split_jittered(total: f64, n: usize, rng: &mut DetRng) -> Vec<f64> {
    assert!(n > 0);
    let weights: Vec<f64> = (0..n).map(|_| rng.uniform_range(0.5, 1.5)).collect();
    let sum: f64 = weights.iter().sum();
    weights.into_iter().map(|w| total * w / sum).collect()
}

/// Round `threads` down to a positive multiple of 4 (one Phi core's worth of
/// hardware threads).
fn round_threads(threads: f64) -> u32 {
    (((threads / 4.0).round() as u32).max(1)) * 4
}

/// Build an alternating host/offload profile.
///
/// Layout: `H O H O … O H` — jobs start and end with a (possibly short) host
/// phase (setup and teardown in the offload programming model).
pub(crate) fn build_profile(
    total_secs: f64,
    duty_cycle: f64,
    n_offloads: usize,
    max_threads: u32,
    rng: &mut DetRng,
) -> JobProfile {
    assert!(n_offloads > 0, "a Phi job must offload at least once");
    assert!((0.0..1.0).contains(&duty_cycle) || duty_cycle == 1.0);
    let offload_total = total_secs * duty_cycle;
    let host_total = total_secs - offload_total;
    let offload_parts = split_jittered(offload_total, n_offloads, rng);
    let host_parts = split_jittered(host_total.max(1e-3), n_offloads + 1, rng);

    // Pick per-offload thread counts: most use the full declared count, some
    // saturate lower. The largest-work offload is forced to the declared
    // maximum so the declaration really is the max.
    let mut threads: Vec<u32> = (0..n_offloads)
        .map(|_| {
            if rng.chance(0.7) {
                max_threads
            } else {
                round_threads(max_threads as f64 * rng.uniform_range(0.5, 1.0)).min(max_threads)
            }
        })
        .collect();
    let max_work_idx = offload_parts
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite work"))
        .map(|(i, _)| i)
        .expect("non-empty offloads");
    threads[max_work_idx] = max_threads;

    let mut segments = Vec::with_capacity(2 * n_offloads + 1);
    for i in 0..n_offloads {
        segments.push(Segment::host(SimDuration::from_secs_f64(host_parts[i])));
        segments.push(Segment::offload(
            threads[i],
            SimDuration::from_secs_f64(offload_parts[i].max(1e-3)),
        ));
    }
    segments.push(Segment::host(SimDuration::from_secs_f64(
        host_parts[n_offloads],
    )));
    JobProfile::new(segments)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_apps_generate_valid_jobs() {
        let mut rng = DetRng::from_seed(1);
        for (i, app) in AppKind::TABLE1.iter().enumerate() {
            let job = app.generate(JobId(i as u64), &mut rng);
            job.validate().expect("generated job must validate");
            let p = app.params();
            assert_eq!(job.thread_req, p.threads);
            assert!(job.mem_req_mb >= p.mem_mb.0 && job.mem_req_mb <= p.mem_mb.1);
            assert!(job.well_behaved());
            assert_eq!(job.profile.max_threads(), p.threads);
        }
    }

    #[test]
    fn duty_cycle_is_respected() {
        let mut rng = DetRng::from_seed(7);
        for app in AppKind::TABLE1 {
            let job = app.generate(JobId(0), &mut rng);
            let duty = job.profile.offload_fraction();
            let expect = app.params().duty_cycle;
            assert!(
                (duty - expect).abs() < 0.02,
                "{app}: duty {duty} vs expected {expect}"
            );
        }
    }

    #[test]
    fn profile_alternates_and_is_bracketed_by_host() {
        let mut rng = DetRng::from_seed(3);
        let job = AppKind::BT.generate(JobId(5), &mut rng);
        let segs = &job.profile.segments;
        assert!(!segs[0].is_offload());
        assert!(!segs[segs.len() - 1].is_offload());
        for pair in segs.windows(2) {
            assert_ne!(pair[0].is_offload(), pair[1].is_offload());
        }
    }

    #[test]
    fn durations_fall_in_declared_range() {
        let mut rng = DetRng::from_seed(11);
        for _ in 0..50 {
            let job = AppKind::SP.generate(JobId(0), &mut rng);
            let d = job.nominal_duration().as_secs_f64();
            let (lo, hi) = AppKind::SP.params().duration_secs;
            assert!(d >= lo - 0.5 && d <= hi + 0.5, "duration {d}");
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = AppKind::LU.generate(JobId(9), &mut DetRng::from_seed(42));
        let b = AppKind::LU.generate(JobId(9), &mut DetRng::from_seed(42));
        assert_eq!(a, b);
    }

    #[test]
    fn split_jittered_sums_to_total() {
        let mut rng = DetRng::from_seed(5);
        let parts = split_jittered(10.0, 7, &mut rng);
        assert_eq!(parts.len(), 7);
        assert!((parts.iter().sum::<f64>() - 10.0).abs() < 1e-9);
        assert!(parts.iter().all(|p| *p > 0.0));
    }

    #[test]
    fn round_threads_snaps_to_cores() {
        assert_eq!(round_threads(1.0), 4);
        assert_eq!(round_threads(60.0), 60);
        assert_eq!(round_threads(119.0), 120);
    }

    #[test]
    #[should_panic(expected = "Synthetic")]
    fn synthetic_has_no_table1_params() {
        let _ = AppKind::Synthetic.params();
    }

    #[test]
    fn expected_core_utilization_is_near_half() {
        // The §III calibration: mean over apps of duty × ceil(t/4)/60.
        let mean: f64 = AppKind::TABLE1
            .iter()
            .map(|a| {
                let p = a.params();
                p.duty_cycle * (p.threads as f64 / 4.0).ceil() / 60.0
            })
            .sum::<f64>()
            / 7.0;
        assert!(
            (0.40..0.60).contains(&mean),
            "calibration drifted: expected ≈0.5, got {mean}"
        );
    }
}
