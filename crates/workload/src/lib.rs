//! # phishare-workload — jobs and workload generators
//!
//! The paper schedules *Xeon Phi offload jobs*: host processes that
//! intermittently offload parallel kernels to the coprocessor. A job is
//! described by
//!
//! * a **declared resource envelope** — the maximum device memory and thread
//!   count the user promises the job will use (the only information the
//!   paper's scheduler relies on, §IV-B), and
//! * an **execution profile** — an alternating sequence of host segments and
//!   offload segments (Figs. 2–3), which the *simulation* uses to execute the
//!   job but which is **never shown to the scheduler**.
//!
//! Two generator families reproduce the paper's workloads:
//!
//! * [`table1`] — the seven real applications of Table I (KM, MC, MD, SG,
//!   BT, SP, LU) with their published thread counts and memory ranges;
//! * [`synthetic`] — the four resource distributions of Fig. 7 (uniform,
//!   normal, low-resource skew, high-resource skew) with correlated memory
//!   and thread requirements.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builder;
pub mod ids;
pub mod io;
pub mod job;
pub mod synthetic;
pub mod table1;

pub use builder::{ArrivalProcess, Workload, WorkloadBuilder, WorkloadKind};
pub use ids::JobId;
pub use io::{workload_from_csv, workload_to_csv};
pub use job::{JobProfile, JobSpec, Segment};
pub use synthetic::{ResourceDist, SyntheticParams};
pub use table1::AppKind;
