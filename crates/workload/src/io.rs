//! Workload import/export.
//!
//! Besides the JSON round-trip on [`Workload`](crate::Workload), this module
//! reads the minimal CSV schema a site would actually have on hand — one
//! line per job with its declared envelope and coarse shape — and expands it
//! into full segment profiles with the same generator the synthetic
//! workloads use. Columns:
//!
//! ```csv
//! name,mem_mb,threads,duration_secs,duty_cycle,offloads
//! KM-batch-1,900,60,28.5,0.7,8
//! ```
//!
//! `duty_cycle` and `offloads` may be empty; they default to 0.75 and 8.

use crate::builder::Workload;
use crate::ids::JobId;
use crate::job::JobSpec;
use crate::table1::{build_profile, AppKind};
use phishare_sim::{DetRng, SimTime};
use std::fmt;

/// A CSV import failure, with the 1-based line number.
#[derive(Debug, Clone, PartialEq)]
pub struct CsvError {
    /// Line the error occurred on (1-based; line 1 is the header).
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for CsvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "workload CSV, line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for CsvError {}

const HEADER: &str = "name,mem_mb,threads,duration_secs,duty_cycle,offloads";

/// Parse a workload from the CSV schema above. Profiles are generated
/// deterministically from `seed` (jitter within each job's declared shape).
pub fn workload_from_csv(csv: &str, seed: u64) -> Result<Workload, CsvError> {
    let mut lines = csv.lines().enumerate();
    let (_, header) = lines.next().ok_or(CsvError {
        line: 1,
        message: "empty input".into(),
    })?;
    if header.trim().to_ascii_lowercase() != HEADER {
        return Err(CsvError {
            line: 1,
            message: format!("expected header {HEADER:?}, got {header:?}"),
        });
    }

    let mut jobs = Vec::new();
    for (i, line) in lines {
        let line_no = i + 1;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split(',').map(str::trim).collect();
        if fields.len() != 6 {
            return Err(CsvError {
                line: line_no,
                message: format!("expected 6 fields, got {}", fields.len()),
            });
        }
        let err = |message: String| CsvError {
            line: line_no,
            message,
        };
        let name = fields[0].to_string();
        if name.is_empty() {
            return Err(err("empty job name".into()));
        }
        let mem_mb: u64 = fields[1]
            .parse()
            .map_err(|e| err(format!("bad mem_mb {:?}: {e}", fields[1])))?;
        let threads: u32 = fields[2]
            .parse()
            .map_err(|e| err(format!("bad threads {:?}: {e}", fields[2])))?;
        let duration_secs: f64 = fields[3]
            .parse()
            .map_err(|e| err(format!("bad duration_secs {:?}: {e}", fields[3])))?;
        let duty_cycle: f64 = if fields[4].is_empty() {
            0.75
        } else {
            fields[4]
                .parse()
                .map_err(|e| err(format!("bad duty_cycle {:?}: {e}", fields[4])))?
        };
        let offloads: usize = if fields[5].is_empty() {
            8
        } else {
            fields[5]
                .parse()
                .map_err(|e| err(format!("bad offloads {:?}: {e}", fields[5])))?
        };
        if !(0.0..1.0).contains(&duty_cycle) {
            return Err(err(format!("duty_cycle {duty_cycle} outside [0, 1)")));
        }
        if duration_secs <= 0.0 || !duration_secs.is_finite() {
            return Err(err(format!("non-positive duration {duration_secs}")));
        }
        if offloads == 0 {
            return Err(err("a Phi job needs at least one offload".into()));
        }

        let id = JobId(jobs.len() as u64);
        let mut rng = DetRng::substream_indexed(seed, "csv-import", id.raw());
        let profile = build_profile(duration_secs, duty_cycle, offloads, threads, &mut rng);
        let spec = JobSpec {
            id,
            name,
            app: AppKind::Synthetic,
            mem_req_mb: mem_mb,
            thread_req: threads,
            actual_peak_mem_mb: mem_mb,
            profile,
        };
        spec.validate()
            .map_err(|e| err(format!("invalid job: {e}")))?;
        jobs.push(spec);
    }

    let arrivals = vec![SimTime::ZERO; jobs.len()];
    Ok(Workload {
        label: format!("csv×{}", jobs.len()),
        jobs,
        arrivals,
        seed,
    })
}

/// Export a workload's declared envelopes in the same CSV schema (profiles
/// collapse to their aggregate duty cycle / offload count).
pub fn workload_to_csv(workload: &Workload) -> String {
    let mut out = String::from(HEADER);
    out.push('\n');
    for job in &workload.jobs {
        out.push_str(&format!(
            "{},{},{},{:.3},{:.3},{}\n",
            job.name,
            job.mem_req_mb,
            job.thread_req,
            job.nominal_duration().as_secs_f64(),
            job.profile.offload_fraction(),
            job.profile.offload_count(),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
name,mem_mb,threads,duration_secs,duty_cycle,offloads
KM-1,900,60,28.5,0.7,8
# a comment line

BT-1,1200,240,45,0.8,12
defaults,500,120,20,,";

    #[test]
    fn parses_the_sample() {
        let wl = workload_from_csv(SAMPLE, 1).unwrap();
        assert_eq!(wl.len(), 3);
        wl.validate().unwrap();
        assert_eq!(wl.jobs[0].name, "KM-1");
        assert_eq!(wl.jobs[0].mem_req_mb, 900);
        assert_eq!(wl.jobs[0].thread_req, 60);
        assert!((wl.jobs[0].nominal_duration().as_secs_f64() - 28.5).abs() < 0.01);
        assert!((wl.jobs[0].profile.offload_fraction() - 0.7).abs() < 0.02);
        // Defaults applied.
        assert_eq!(wl.jobs[2].profile.offload_count(), 8);
    }

    #[test]
    fn import_is_deterministic_per_seed() {
        assert_eq!(
            workload_from_csv(SAMPLE, 5).unwrap(),
            workload_from_csv(SAMPLE, 5).unwrap()
        );
        assert_ne!(
            workload_from_csv(SAMPLE, 5).unwrap(),
            workload_from_csv(SAMPLE, 6).unwrap()
        );
    }

    #[test]
    fn csv_round_trip_preserves_envelopes() {
        let wl = workload_from_csv(SAMPLE, 1).unwrap();
        let csv = workload_to_csv(&wl);
        let back = workload_from_csv(&csv, 1).unwrap();
        assert_eq!(back.len(), wl.len());
        for (a, b) in wl.jobs.iter().zip(back.jobs.iter()) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.mem_req_mb, b.mem_req_mb);
            assert_eq!(a.thread_req, b.thread_req);
            assert!(
                (a.nominal_duration().as_secs_f64() - b.nominal_duration().as_secs_f64()).abs()
                    < 0.1
            );
        }
    }

    #[test]
    fn errors_carry_line_numbers() {
        let bad = "name,mem_mb,threads,duration_secs,duty_cycle,offloads\nx,abc,60,10,0.7,8";
        let e = workload_from_csv(bad, 1).unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.to_string().contains("mem_mb"));

        let e = workload_from_csv("wrong,header\n", 1).unwrap_err();
        assert_eq!(e.line, 1);

        let e = workload_from_csv(
            "name,mem_mb,threads,duration_secs,duty_cycle,offloads\nx,100,60,10,1.5,8",
            1,
        )
        .unwrap_err();
        assert!(e.message.contains("duty_cycle"));

        let e = workload_from_csv(
            "name,mem_mb,threads,duration_secs,duty_cycle,offloads\nx,100,60,-3,0.5,8",
            1,
        )
        .unwrap_err();
        assert!(e.message.contains("duration"));

        let e = workload_from_csv(
            "name,mem_mb,threads,duration_secs,duty_cycle,offloads\nx,100,60,10,0.5,0",
            1,
        )
        .unwrap_err();
        assert!(e.message.contains("offload"));
    }

    #[test]
    fn empty_input_fails_cleanly() {
        assert!(workload_from_csv("", 1).is_err());
        // Header only: a valid empty workload.
        let wl = workload_from_csv(HEADER, 1).unwrap();
        assert!(wl.is_empty());
    }
}
