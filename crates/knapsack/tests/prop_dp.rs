//! Property tests: the 2-D DP is optimal (vs the exhaustive oracle) and all
//! solvers respect feasibility on arbitrary instances.

use phishare_knapsack::baseline::Packer;
use phishare_knapsack::bb::solve_branch_and_bound_bounded;
use phishare_knapsack::exhaustive::solve_exhaustive;
use phishare_knapsack::{
    solve_1d_filtered, solve_2d, BestFitDecreasing, Capacity, FirstFit, PackItem, Packing,
    RandomFit, ValueFunction,
};
use phishare_sim::DetRng;
use proptest::prelude::*;

fn arb_item(index: usize) -> impl Strategy<Value = PackItem> {
    (50u64..4000, 1u32..=60).prop_map(move |(mem_mb, cores)| PackItem {
        index,
        mem_mb,
        threads: cores * 4,
    })
}

fn arb_items(max: usize) -> impl Strategy<Value = Vec<PackItem>> {
    prop::collection::vec(any::<()>(), 1..=max).prop_flat_map(|v| {
        v.into_iter()
            .enumerate()
            .map(|(i, _)| arb_item(i))
            .collect::<Vec<_>>()
    })
}

fn arb_capacity() -> impl Strategy<Value = Capacity> {
    (
        500u64..8000,
        prop::sample::select(vec![25u64, 50, 100, 200]),
    )
        .prop_map(|(mem_mb, granularity_mb)| Capacity {
            mem_mb,
            granularity_mb,
            thread_limit: 240,
            value_ref_threads: 0,
        })
}

fn assert_feasible(p: &Packing, cap: &Capacity, check_threads: bool) {
    assert!(
        p.total_mem_mb <= cap.mem_mb,
        "memory overpacked: {} > {}",
        p.total_mem_mb,
        cap.mem_mb
    );
    if check_threads {
        assert!(
            p.total_threads <= cap.thread_limit,
            "threads overpacked: {} > {}",
            p.total_threads,
            cap.thread_limit
        );
    }
    // No duplicate selections.
    let mut seen = p.selected.clone();
    seen.dedup();
    assert_eq!(seen.len(), p.selected.len(), "duplicate selection");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The 2-D DP achieves exactly the exhaustive optimum on every instance
    /// small enough to enumerate.
    #[test]
    fn dp_2d_matches_oracle(items in arb_items(12), cap in arb_capacity()) {
        for vf in [ValueFunction::PaperQuadratic, ValueFunction::Unit] {
            let oracle = solve_exhaustive(&items, &cap, vf);
            let dp = solve_2d(&items, &cap, vf);
            prop_assert!(
                (oracle.total_value - dp.total_value).abs() < 1e-9,
                "{vf}: oracle {} vs dp {} on {} items",
                oracle.total_value, dp.total_value, items.len()
            );
        }
    }

    /// The DP's reported aggregates are consistent with its selection and
    /// always feasible.
    #[test]
    fn dp_2d_is_feasible_and_consistent(items in arb_items(40), cap in arb_capacity()) {
        let p = solve_2d(&items, &cap, ValueFunction::PaperQuadratic);
        assert_feasible(&p, &cap, true);
        let recomputed: f64 = p.selected.iter().map(|&idx| {
            let it = items.iter().find(|i| i.index == idx).unwrap();
            ValueFunction::PaperQuadratic.value(it.threads, cap.thread_limit)
        }).sum();
        prop_assert!((recomputed - p.total_value).abs() < 1e-9);
    }

    /// The repaired 1-D solver never violates either constraint and never
    /// beats the 2-D optimum.
    #[test]
    fn dp_1d_filtered_is_feasible_and_dominated(items in arb_items(30), cap in arb_capacity()) {
        let p1 = solve_1d_filtered(&items, &cap, ValueFunction::PaperQuadratic);
        assert_feasible(&p1, &cap, true);
        let p2 = solve_2d(&items, &cap, ValueFunction::PaperQuadratic);
        prop_assert!(p2.total_value >= p1.total_value - 1e-9);
    }

    /// Baseline packers respect their stated constraints.
    #[test]
    fn baselines_are_feasible(items in arb_items(30), cap in arb_capacity(), seed in any::<u64>()) {
        let mut rng = DetRng::from_seed(seed);
        assert_feasible(&RandomFit.pack(&items, &cap, &mut rng), &cap, false);
        assert_feasible(&FirstFit.pack(&items, &cap, &mut rng), &cap, true);
        assert_feasible(&BestFitDecreasing.pack(&items, &cap, &mut rng), &cap, true);
    }

    /// Branch-and-bound agrees with the DP whenever its search completes,
    /// and is always feasible regardless.
    #[test]
    fn branch_and_bound_matches_dp(items in arb_items(16), cap in arb_capacity()) {
        let dp = solve_2d(&items, &cap, ValueFunction::PaperQuadratic);
        let (bb, complete) =
            solve_branch_and_bound_bounded(&items, &cap, ValueFunction::PaperQuadratic, 2_000_000);
        assert_feasible(&bb, &cap, true);
        if complete {
            prop_assert!(
                (dp.total_value - bb.total_value).abs() < 1e-9,
                "dp {} vs b&b {}", dp.total_value, bb.total_value
            );
        }
    }

    /// Monotonicity: growing the knapsack never lowers the optimal value.
    #[test]
    fn dp_2d_value_is_monotone_in_capacity(items in arb_items(20), cap in arb_capacity()) {
        let small = solve_2d(&items, &cap, ValueFunction::PaperQuadratic);
        let bigger = Capacity { mem_mb: cap.mem_mb + cap.granularity_mb, ..cap };
        let large = solve_2d(&items, &bigger, ValueFunction::PaperQuadratic);
        prop_assert!(large.total_value >= small.total_value - 1e-9);
    }

    /// Adding an item never lowers the optimal value.
    #[test]
    fn dp_2d_value_is_monotone_in_items(items in arb_items(20), cap in arb_capacity()) {
        let all = solve_2d(&items, &cap, ValueFunction::PaperQuadratic);
        let fewer = solve_2d(&items[..items.len() - 1], &cap, ValueFunction::PaperQuadratic);
        prop_assert!(all.total_value >= fewer.total_value - 1e-9);
    }
}
