//! Branch-and-bound exact solver.
//!
//! A third solver family besides the DP and the exhaustive oracle: depth-
//! first search over include/exclude decisions with a fractional-relaxation
//! upper bound for pruning. Exact like the DP, but its cost depends on the
//! instance rather than on `n·W·T` — fast when the value ordering is
//! informative, exponential in adversarial cases. Included for the solver
//! comparison in `perf_knapsack` and as a second independent oracle for the
//! property tests.

use crate::item::{Capacity, PackItem, Packing};
use crate::value::ValueFunction;

/// Hard cap on search nodes; beyond this the solver falls back to the best
/// solution found so far (which is then a heuristic, flagged by the return
/// type in [`solve_branch_and_bound_bounded`]).
const DEFAULT_NODE_BUDGET: u64 = 5_000_000;

struct Prepared {
    index: usize,
    units: usize,
    threads: u32,
    value: f64,
}

struct Search<'a> {
    items: &'a [Prepared],
    w_max: usize,
    t_max: u32,
    best_value: f64,
    best_set: Vec<usize>,
    current_set: Vec<usize>,
    nodes: u64,
    budget: u64,
}

impl Search<'_> {
    /// Fractional upper bound on the value attainable from `pos` onward
    /// with `w_left` memory units free (threads relaxed entirely — any
    /// admissible bound works; looser bounds only cost pruning power).
    fn bound(&self, pos: usize, w_left: usize) -> f64 {
        let mut bound = 0.0;
        let mut w = w_left as f64;
        for it in &self.items[pos..] {
            if w <= 0.0 {
                break;
            }
            let units = it.units.max(1) as f64;
            if units <= w {
                bound += it.value;
                w -= units;
            } else {
                bound += it.value * (w / units);
                break;
            }
        }
        bound
    }

    fn dfs(&mut self, pos: usize, w_left: usize, t_left: u32, value: f64) {
        self.nodes += 1;
        if self.nodes > self.budget {
            return;
        }
        if value > self.best_value {
            self.best_value = value;
            self.best_set = self.current_set.clone();
        }
        if pos == self.items.len() || value + self.bound(pos, w_left) <= self.best_value + 1e-12 {
            return;
        }
        let it = &self.items[pos];
        // Branch: include (if feasible) first — items are density-sorted,
        // so inclusion tends to reach strong incumbents quickly.
        if it.units <= w_left && it.threads <= t_left {
            self.current_set.push(it.index);
            self.dfs(
                pos + 1,
                w_left - it.units,
                t_left - it.threads,
                value + it.value,
            );
            self.current_set.pop();
        }
        self.dfs(pos + 1, w_left, t_left, value);
    }
}

/// Exact branch-and-bound solve with the default node budget. On the
/// pathological instances where the budget trips, the result degrades to
/// the best incumbent (still feasible, possibly suboptimal).
pub fn solve_branch_and_bound(
    items: &[PackItem],
    cap: &Capacity,
    value_fn: ValueFunction,
) -> Packing {
    solve_branch_and_bound_bounded(items, cap, value_fn, DEFAULT_NODE_BUDGET).0
}

/// Like [`solve_branch_and_bound`] with an explicit node budget; the second
/// return value is `true` when the search completed (the result is provably
/// optimal) and `false` when the budget tripped.
pub fn solve_branch_and_bound_bounded(
    items: &[PackItem],
    cap: &Capacity,
    value_fn: ValueFunction,
    budget: u64,
) -> (Packing, bool) {
    let w_max = cap.units();
    if w_max == 0 || items.is_empty() || cap.thread_limit == 0 {
        return (Packing::default(), true);
    }
    let mut prepared: Vec<Prepared> = items
        .iter()
        .filter_map(|it| {
            let units = cap.item_units(it.mem_mb);
            (units <= w_max && it.threads <= cap.thread_limit).then(|| Prepared {
                index: it.index,
                units,
                threads: it.threads,
                value: value_fn.value(it.threads, cap.value_threads()),
            })
        })
        .collect();
    if prepared.is_empty() {
        return (Packing::default(), true);
    }
    // Density order (value per memory unit) makes the fractional bound
    // valid and tight.
    prepared.sort_by(|a, b| {
        let da = a.value / a.units.max(1) as f64;
        let db = b.value / b.units.max(1) as f64;
        db.partial_cmp(&da)
            .expect("finite densities")
            .then(a.index.cmp(&b.index))
    });

    let mut search = Search {
        items: &prepared,
        w_max,
        t_max: cap.thread_limit,
        best_value: 0.0,
        best_set: Vec::new(),
        current_set: Vec::new(),
        nodes: 0,
        budget,
    };
    let (w, t) = (search.w_max, search.t_max);
    search.dfs(0, w, t, 0.0);
    let complete = search.nodes <= search.budget;
    (
        Packing::from_selection(items, search.best_set, search.best_value),
        complete,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dp::solve_2d;

    fn it(index: usize, mem_mb: u64, threads: u32) -> PackItem {
        PackItem {
            index,
            mem_mb,
            threads,
        }
    }

    #[test]
    fn matches_dp_on_fixed_instances() {
        let cap = Capacity::phi(4000);
        let items = [
            it(0, 900, 240),
            it(1, 1200, 120),
            it(2, 700, 60),
            it(3, 1500, 180),
            it(4, 400, 16),
            it(5, 2100, 200),
            it(6, 350, 32),
        ];
        for vf in ValueFunction::ALL {
            let dp = solve_2d(&items, &cap, vf);
            let (bb, complete) = solve_branch_and_bound_bounded(&items, &cap, vf, 1_000_000);
            assert!(complete);
            assert!(
                (dp.total_value - bb.total_value).abs() < 1e-9,
                "{vf}: dp {} vs bb {}",
                dp.total_value,
                bb.total_value
            );
            assert!(bb.is_feasible(&cap));
        }
    }

    #[test]
    fn respects_thread_limit() {
        let cap = Capacity::phi(7680);
        let items: Vec<PackItem> = (0..8).map(|i| it(i, 100, 120)).collect();
        let p = solve_branch_and_bound(&items, &cap, ValueFunction::PaperQuadratic);
        assert_eq!(p.concurrency(), 2);
        assert!(p.total_threads <= 240);
    }

    #[test]
    fn empty_and_degenerate_inputs() {
        let cap = Capacity::phi(1000);
        assert!(solve_branch_and_bound(&[], &cap, ValueFunction::default()).is_empty());
        let zero = Capacity {
            thread_limit: 0,
            ..cap
        };
        assert!(
            solve_branch_and_bound(&[it(0, 100, 4)], &zero, ValueFunction::default()).is_empty()
        );
    }

    #[test]
    fn budget_trip_still_returns_feasible_incumbent() {
        let cap = Capacity::phi(7680);
        let items: Vec<PackItem> = (0..40).map(|i| it(i, 180 + i as u64, 8)).collect();
        let (p, complete) = solve_branch_and_bound_bounded(
            &items,
            &cap,
            ValueFunction::PaperQuadratic,
            50, // absurdly small budget
        );
        assert!(!complete);
        assert!(p.is_feasible(&cap));
    }
}
