//! Job value functions.
//!
//! The paper's Eq. (1): `v_i = 1 − (t_i / 240)²` — every job is worth close
//! to 1 (so the DP maximizes *count*), discounted quadratically by its
//! thread appetite (so low-thread jobs pack together and leave room). The
//! alternatives here feed the value-function ablation bench.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Selectable value functions for the knapsack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum ValueFunction {
    /// The paper's Eq. (1): `1 − (t/T)²`.
    #[default]
    PaperQuadratic,
    /// Linear discount: `1 − t/(T+1)` (strictly positive so every job keeps
    /// nonzero value).
    Linear,
    /// Unit value: pure concurrency maximization, thread-blind.
    Unit,
    /// Inverse threads: `1/t` — aggressively prefers small jobs.
    InverseThreads,
}

impl ValueFunction {
    /// Floor applied to every job's value. Eq. (1) evaluates to exactly 0
    /// for a full-width (240-thread) job, and a zero-value item is *never*
    /// chosen by a value-maximizing DP — full-width jobs (e.g. the BT
    /// workload) would starve forever. The floor keeps the paper's ordering
    /// while guaranteeing every job is eventually packable.
    pub const FLOOR: f64 = 1e-3;

    /// The value of a job requesting `threads` on hardware with
    /// `thread_limit` total threads.
    pub fn value(&self, threads: u32, thread_limit: u32) -> f64 {
        debug_assert!(thread_limit > 0);
        let t = threads as f64;
        let cap = thread_limit as f64;
        let raw = match self {
            ValueFunction::PaperQuadratic => 1.0 - (t / cap) * (t / cap),
            ValueFunction::Linear => 1.0 - t / (cap + 1.0),
            ValueFunction::Unit => 1.0,
            ValueFunction::InverseThreads => 1.0 / t.max(1.0),
        };
        raw.max(Self::FLOOR)
    }

    /// All variants, for ablation sweeps.
    pub const ALL: [ValueFunction; 4] = [
        ValueFunction::PaperQuadratic,
        ValueFunction::Linear,
        ValueFunction::Unit,
        ValueFunction::InverseThreads,
    ];
}

impl fmt::Display for ValueFunction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ValueFunction::PaperQuadratic => "quadratic",
            ValueFunction::Linear => "linear",
            ValueFunction::Unit => "unit",
            ValueFunction::InverseThreads => "inverse",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_values_match_eq1() {
        let v = ValueFunction::PaperQuadratic;
        assert_eq!(v.value(0, 240), 1.0);
        // Eq. (1) gives 0 at full width; the starvation floor lifts it to ε.
        assert_eq!(v.value(240, 240), ValueFunction::FLOOR);
        assert!((v.value(120, 240) - 0.75).abs() < 1e-12);
        assert!((v.value(60, 240) - (1.0 - 0.0625)).abs() < 1e-12);
    }

    #[test]
    fn floor_keeps_every_job_packable() {
        for f in ValueFunction::ALL {
            assert!(f.value(240, 240) >= ValueFunction::FLOOR);
        }
    }

    #[test]
    fn quadratic_discount_favours_small_jobs_superlinearly() {
        let v = ValueFunction::PaperQuadratic;
        // Two 120-thread jobs are worth more than one 240-thread job — the
        // bias that makes concurrency win.
        assert!(2.0 * v.value(120, 240) > v.value(240, 240) + 1.0 - f64::EPSILON);
    }

    #[test]
    fn all_functions_are_positive_below_limit() {
        for f in ValueFunction::ALL {
            for t in [4, 60, 120, 180, 239] {
                assert!(f.value(t, 240) > 0.0, "{f} at {t} threads");
            }
        }
    }

    #[test]
    fn all_functions_are_monotone_nonincreasing_in_threads() {
        for f in ValueFunction::ALL {
            let mut last = f64::INFINITY;
            for t in (4..=240).step_by(4) {
                let v = f.value(t, 240);
                assert!(v <= last + 1e-12, "{f} not monotone at {t}");
                last = v;
            }
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(ValueFunction::PaperQuadratic.to_string(), "quadratic");
        assert_eq!(ValueFunction::default(), ValueFunction::PaperQuadratic);
    }
}
