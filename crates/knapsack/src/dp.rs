//! Dynamic-programming knapsack solvers.
//!
//! Two entry families share one DP core each:
//!
//! * [`solve_2d`] / [`solve_1d_filtered`] — take raw [`PackItem`]s, filter
//!   and evaluate them inline (the seed's solvers, retained as differential
//!   oracles for the planning fast path);
//! * [`solve_prepped_2d_with`] / [`solve_prepped_1d_with`] — take a
//!   [`Prepped`](crate::prep::Prepped) instance produced by
//!   [`prep_2d`](crate::prep::prep_2d) / [`prep_1d`](crate::prep::prep_1d)
//!   (fit-filtered, multiplicity-truncated) and return selected *positions*
//!   into it. Because both families funnel through the same cores, a prepped
//!   solve is bit-identical to the raw solve on the same instance.

use crate::item::{Capacity, PackItem, Packing};
use crate::prep::Prepped;
use crate::value::ValueFunction;

/// Hardware threads per memory-free "thread unit". Threads are discretized
/// by core (4 hardware threads) exactly as memory is discretized by
/// granularity; workloads request threads in multiples of 4, so this is
/// lossless for them and conservative otherwise.
pub(crate) const THREADS_PER_UNIT: u32 = 4;

/// Reusable buffers for the DP solvers. A scheduler calls the knapsack once
/// per device per planning round; holding one `DpScratch` across calls
/// turns the two dominant allocations (the value table and the backtracking
/// bit grid) into buffer reuses.
#[derive(Debug, Default, Clone)]
pub struct DpScratch {
    /// DP value table, `(w_max+1) × (t_max+1)` cells (or `w_max+1` for the
    /// 1-D variant).
    dp: Vec<f64>,
    /// Backing words of the backtracking [`BitGrid`].
    words: Vec<u64>,
    /// High-water mark: how many leading words of `words` the previous
    /// solve may have dirtied. Everything past it is known-zero, so a reset
    /// only has to re-zero this prefix instead of the whole buffer.
    words_hot: usize,
}

/// A dense bit grid recording, per item layer, which DP cells were improved
/// by taking the item — the backtracking information for reconstruction.
/// Borrows its storage from a [`DpScratch`].
struct BitGrid<'a> {
    words: &'a mut Vec<u64>,
    cells_per_item: usize,
}

impl<'a> BitGrid<'a> {
    /// Prepare a zeroed grid of `items × cells_per_item` bits on top of the
    /// scratch words, retaining capacity across solves. Invariant: words at
    /// and beyond `*hot` are zero, so only the previously dirtied prefix
    /// needs re-zeroing — repeated solves of any size never re-zero the full
    /// backing buffer, and shrinking instances never pay for the largest
    /// instance seen.
    fn reset(
        words: &'a mut Vec<u64>,
        hot: &'a mut usize,
        items: usize,
        cells_per_item: usize,
    ) -> Self {
        let total_words = (items * cells_per_item).div_ceil(64);
        let dirty = (*hot).min(words.len());
        words[..dirty].fill(0);
        if words.len() < total_words {
            words.resize(total_words, 0u64);
        }
        *hot = total_words;
        BitGrid {
            words,
            cells_per_item,
        }
    }

    #[inline]
    fn set(&mut self, item: usize, cell: usize) {
        let bit = item * self.cells_per_item + cell;
        self.words[bit / 64] |= 1u64 << (bit % 64);
    }

    #[inline]
    fn get(&self, item: usize, cell: usize) -> bool {
        let bit = item * self.cells_per_item + cell;
        self.words[bit / 64] & (1u64 << (bit % 64)) != 0
    }
}

/// One effective item layer for the 2-D core: weight/thread units plus its
/// already-evaluated value.
struct Layer2 {
    w: usize,
    t: usize,
    v: f64,
}

/// Shared 2-D DP core. Returns the selected layer positions in
/// reconstruction order (descending) and the optimum at the full-capacity
/// cell. Both the raw and the prepped entry points call this, which is what
/// makes them bit-identical on equal effective instances.
fn dp_core_2d(
    layers: &[Layer2],
    w_max: usize,
    t_max: usize,
    scratch: &mut DpScratch,
) -> (Vec<usize>, f64) {
    let stride = t_max + 1;
    let cells = (w_max + 1) * stride;
    let DpScratch {
        dp,
        words,
        words_hot,
    } = scratch;
    dp.clear();
    dp.resize(cells, 0.0);
    let mut taken = BitGrid::reset(words, words_hot, layers.len(), cells);

    for (k, it) in layers.iter().enumerate() {
        // In-place 0-1 update: iterate capacities downward so each item is
        // used at most once.
        for w in (it.w..=w_max).rev() {
            for t in (it.t..=t_max).rev() {
                let from = (w - it.w) * stride + (t - it.t);
                let here = w * stride + t;
                let candidate = dp[from] + it.v;
                if candidate > dp[here] {
                    dp[here] = candidate;
                    taken.set(k, here);
                }
            }
        }
    }

    // Reconstruct from the full-capacity cell.
    let mut w = w_max;
    let mut t = t_max;
    let mut selected = Vec::new();
    for (k, it) in layers.iter().enumerate().rev() {
        if taken.get(k, w * stride + t) {
            selected.push(k);
            w -= it.w;
            t -= it.t;
        }
    }
    (selected, dp[cells - 1])
}

/// One effective item layer for the 1-D core.
struct Layer1 {
    w: usize,
    v: f64,
}

/// Shared 1-D DP core; returns selected layer positions in reconstruction
/// order (descending).
fn dp_core_1d(layers: &[Layer1], w_max: usize, scratch: &mut DpScratch) -> Vec<usize> {
    let DpScratch {
        dp,
        words,
        words_hot,
    } = scratch;
    dp.clear();
    dp.resize(w_max + 1, 0.0);
    let mut taken = BitGrid::reset(words, words_hot, layers.len(), w_max + 1);
    for (k, it) in layers.iter().enumerate() {
        for w in (it.w..=w_max).rev() {
            let candidate = dp[w - it.w] + it.v;
            if candidate > dp[w] {
                dp[w] = candidate;
                taken.set(k, w);
            }
        }
    }

    let mut w = w_max;
    let mut chosen = Vec::new();
    for (k, it) in layers.iter().enumerate().rev() {
        if taken.get(k, w) {
            chosen.push(k);
            w -= it.w;
        }
    }
    chosen
}

/// Shared repair pass for the 1-D variant: enforce the value-zero rule by
/// shedding thread hogs until the chosen set's thread sum fits. `chosen`
/// must be in DP reconstruction order (descending position) — the
/// `max_by_key` tie-break (last maximal element in iteration order) and the
/// `swap_remove` shuffle are order-sensitive, so both solver families feed
/// this the same order to stay bit-identical.
fn repair_threads(chosen: &mut Vec<usize>, threads_of: impl Fn(usize) -> u32, limit: u32) {
    let mut total_threads: u32 = chosen.iter().map(|&p| threads_of(p)).sum();
    while total_threads > limit {
        let (drop_at, _) = chosen
            .iter()
            .enumerate()
            .max_by_key(|(_, &p)| threads_of(p))
            .expect("non-empty while oversubscribed");
        total_threads -= threads_of(chosen[drop_at]);
        chosen.swap_remove(drop_at);
    }
}

/// Exact 0-1 knapsack over **two** resource dimensions: memory units and
/// thread units. The thread-sum constraint (the paper's value-zero rule) is
/// enforced *inside* the DP, so the returned packing is always feasible and
/// value-optimal under the discretization.
///
/// Complexity `O(n · W · T)` with `W = capacity/granularity` memory units
/// (153 for a 7.5 GB-usable card at 50 MB) and `T = thread_limit/4` thread
/// units (60 on the Phi) — the 2-D analogue of the paper's `O(n·w)` claim.
///
/// ```
/// use phishare_knapsack::{solve_2d, Capacity, PackItem, ValueFunction};
///
/// let items = vec![
///     PackItem { index: 0, mem_mb: 4000, threads: 240 },
///     PackItem { index: 1, mem_mb: 2000, threads: 80 },
///     PackItem { index: 2, mem_mb: 2000, threads: 80 },
///     PackItem { index: 3, mem_mb: 3000, threads: 80 },
/// ];
/// let p = solve_2d(&items, &Capacity::phi(7680), ValueFunction::PaperQuadratic);
/// // The quadratic value packs the three small-thread jobs, not the hog.
/// assert_eq!(p.selected, vec![1, 2, 3]);
/// assert!(p.total_threads <= 240);
/// ```
pub fn solve_2d(items: &[PackItem], cap: &Capacity, value_fn: ValueFunction) -> Packing {
    solve_2d_with(items, cap, value_fn, &mut DpScratch::default())
}

/// [`solve_2d`] with caller-provided scratch buffers (allocation-free once
/// the buffers have grown to the instance size).
pub fn solve_2d_with(
    items: &[PackItem],
    cap: &Capacity,
    value_fn: ValueFunction,
    scratch: &mut DpScratch,
) -> Packing {
    let w_max = cap.units();
    let t_max = (cap.thread_limit / THREADS_PER_UNIT) as usize;
    if w_max == 0 || t_max == 0 || items.is_empty() {
        return Packing::default();
    }

    // Pre-filter items that cannot fit alone; remember original positions.
    let mut pos_of = Vec::new();
    let layers: Vec<Layer2> = items
        .iter()
        .enumerate()
        .filter_map(|(pos, it)| {
            let w = cap.item_units(it.mem_mb);
            let t = it.threads.div_ceil(THREADS_PER_UNIT) as usize;
            if w <= w_max && t <= t_max && it.threads <= cap.thread_limit {
                pos_of.push(pos);
                Some(Layer2 {
                    w,
                    t,
                    v: value_fn.value(it.threads, cap.value_threads()),
                })
            } else {
                None
            }
        })
        .collect();
    if layers.is_empty() {
        return Packing::default();
    }

    let (chosen, total) = dp_core_2d(&layers, w_max, t_max, scratch);
    let selected = chosen.into_iter().map(|k| items[pos_of[k]].index).collect();
    Packing::from_selection(items, selected, total)
}

/// The paper-literal variant: a 1-D DP over memory only, followed by a
/// repair pass implementing the value-zero rule — if the chosen set's thread
/// sum exceeds the limit, highest-thread items are dropped until it fits.
///
/// Kept for the ablation bench (`abl_knapsack_variants`); [`solve_2d`]
/// dominates it whenever threads are the binding constraint.
pub fn solve_1d_filtered(items: &[PackItem], cap: &Capacity, value_fn: ValueFunction) -> Packing {
    solve_1d_filtered_with(items, cap, value_fn, &mut DpScratch::default())
}

/// [`solve_1d_filtered`] with caller-provided scratch buffers.
pub fn solve_1d_filtered_with(
    items: &[PackItem],
    cap: &Capacity,
    value_fn: ValueFunction,
    scratch: &mut DpScratch,
) -> Packing {
    let w_max = cap.units();
    if w_max == 0 || items.is_empty() {
        return Packing::default();
    }

    let mut pos_of = Vec::new();
    let layers: Vec<Layer1> = items
        .iter()
        .enumerate()
        .filter_map(|(pos, it)| {
            let w = cap.item_units(it.mem_mb);
            (w <= w_max && it.threads <= cap.thread_limit).then(|| {
                pos_of.push(pos);
                Layer1 {
                    w,
                    v: value_fn.value(it.threads, cap.value_threads()),
                }
            })
        })
        .collect();
    if layers.is_empty() {
        return Packing::default();
    }

    let mut chosen = dp_core_1d(&layers, w_max, scratch);
    repair_threads(&mut chosen, |k| items[pos_of[k]].threads, cap.thread_limit);

    let total_value = chosen
        .iter()
        .map(|&k| value_fn.value(items[pos_of[k]].threads, cap.value_threads()))
        .sum();
    let selected = chosen.into_iter().map(|k| items[pos_of[k]].index).collect();
    Packing::from_selection(items, selected, total_value)
}

/// Solve a [`Prepped`] 2-D instance. Returns `(positions, total_value)`
/// where positions index into `pre.items` in ascending order. Bit-identical
/// to [`solve_2d_with`] on the raw instance the prep came from (the
/// truncated copies provably never enter any optimum — see
/// [`crate::prep`]).
pub fn solve_prepped_2d_with(
    pre: &Prepped,
    value_fn: ValueFunction,
    scratch: &mut DpScratch,
) -> (Vec<usize>, f64) {
    if pre.items.is_empty() || pre.w_max == 0 || pre.t_max == 0 {
        return (Vec::new(), 0.0);
    }
    let layers: Vec<Layer2> = pre
        .items
        .iter()
        .map(|it| Layer2 {
            w: it.w,
            t: it.t,
            v: value_fn.value(it.threads, pre.value_ref),
        })
        .collect();
    let (mut chosen, total) = dp_core_2d(&layers, pre.w_max, pre.t_max, scratch);
    chosen.sort_unstable();
    (chosen, total)
}

/// Solve a [`Prepped`] 1-D instance (memory DP + thread repair). Returns
/// `(positions, total_value)` with positions into `pre.items`, ascending.
/// Bit-identical to [`solve_1d_filtered_with`] on the raw instance.
pub fn solve_prepped_1d_with(
    pre: &Prepped,
    value_fn: ValueFunction,
    scratch: &mut DpScratch,
) -> (Vec<usize>, f64) {
    if pre.items.is_empty() || pre.w_max == 0 {
        return (Vec::new(), 0.0);
    }
    let layers: Vec<Layer1> = pre
        .items
        .iter()
        .map(|it| Layer1 {
            w: it.w,
            v: value_fn.value(it.threads, pre.value_ref),
        })
        .collect();
    let mut chosen = dp_core_1d(&layers, pre.w_max, scratch);
    repair_threads(&mut chosen, |k| pre.items[k].threads, pre.thread_limit);
    let total_value = chosen
        .iter()
        .map(|&k| value_fn.value(pre.items[k].threads, pre.value_ref))
        .sum();
    chosen.sort_unstable();
    (chosen, total_value)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn it(index: usize, mem_mb: u64, threads: u32) -> PackItem {
        PackItem {
            index,
            mem_mb,
            threads,
        }
    }

    #[test]
    fn empty_inputs_yield_empty_packing() {
        let cap = Capacity::phi(7680);
        assert!(solve_2d(&[], &cap, ValueFunction::default()).is_empty());
        assert!(solve_2d(
            &[it(0, 100, 60)],
            &Capacity::phi(0),
            ValueFunction::default()
        )
        .is_empty());
        assert!(solve_1d_filtered(&[], &cap, ValueFunction::default()).is_empty());
    }

    #[test]
    fn oversized_items_are_excluded() {
        let cap = Capacity::phi(1000);
        let p = solve_2d(
            &[it(0, 2000, 60), it(1, 500, 300), it(2, 500, 60)],
            &cap,
            ValueFunction::default(),
        );
        assert_eq!(p.selected, vec![2]);
    }

    #[test]
    fn memory_constraint_is_respected() {
        let cap = Capacity::phi(1000);
        let items = [it(0, 600, 20), it(1, 600, 20), it(2, 300, 20)];
        let p = solve_2d(&items, &cap, ValueFunction::default());
        assert!(p.total_mem_mb <= 1000);
        assert_eq!(p.concurrency(), 2); // one 600 + the 300
    }

    #[test]
    fn thread_constraint_is_respected_by_2d() {
        let cap = Capacity::phi(7680);
        // Memory-plentiful, thread-starved: only two 120-thread jobs fit.
        let items = [
            it(0, 100, 120),
            it(1, 100, 120),
            it(2, 100, 120),
            it(3, 100, 120),
        ];
        let p = solve_2d(&items, &cap, ValueFunction::default());
        assert_eq!(p.concurrency(), 2);
        assert!(p.total_threads <= 240);
    }

    #[test]
    fn quadratic_value_prefers_many_small_jobs() {
        let cap = Capacity::phi(7680);
        let items = [
            it(0, 4000, 240), // hog
            it(1, 2000, 80),
            it(2, 2000, 80),
            it(3, 3000, 80),
        ];
        let p = solve_2d(&items, &cap, ValueFunction::PaperQuadratic);
        assert_eq!(p.selected, vec![1, 2, 3]);
        assert_eq!(p.total_threads, 240);
    }

    #[test]
    fn thread_bound_tie_breaks_to_best_value() {
        let cap = Capacity::phi(7680);
        // {1,2,3} is thread-infeasible (300 > 240); the best feasible set
        // pairs the 60-thread job with one 120-thread job.
        let items = [
            it(0, 4000, 240),
            it(1, 2000, 120),
            it(2, 2000, 120),
            it(3, 3000, 60),
        ];
        let p = solve_2d(&items, &cap, ValueFunction::PaperQuadratic);
        assert_eq!(p.concurrency(), 2);
        assert!(p.selected.contains(&3));
        assert!(!p.selected.contains(&0));
        assert!((p.total_value - (0.75 + 0.9375)).abs() < 1e-9);
        assert!(p.total_threads <= 240);
    }

    #[test]
    fn discretization_never_overpacks_memory() {
        // Items of 51 MB cost 2 units (100 MB) each; capacity 153 MB = 3
        // units, so only ⌊3/2⌋ = 1 item packs even though 3×51 = 153 ≤ 153.
        // Conservative, never unsafe.
        let cap = Capacity {
            mem_mb: 153,
            granularity_mb: 50,
            thread_limit: 240,
            value_ref_threads: 0,
        };
        let items = [it(0, 51, 4), it(1, 51, 4), it(2, 51, 4)];
        let p = solve_2d(&items, &cap, ValueFunction::default());
        assert_eq!(p.concurrency(), 1);
        assert!(p.total_mem_mb <= 153);
    }

    #[test]
    fn one_d_filtered_repairs_thread_overruns() {
        let cap = Capacity::phi(7680);
        let items = [
            it(0, 100, 240),
            it(1, 100, 120),
            it(2, 100, 120),
            it(3, 100, 4),
        ];
        let p = solve_1d_filtered(&items, &cap, ValueFunction::default());
        assert!(p.total_threads <= 240, "repair failed: {}", p.total_threads);
        assert!(p.is_feasible(&cap));
        // The 240-thread hog has the least value; repair drops it first.
        assert!(!p.selected.contains(&0));
    }

    #[test]
    fn two_d_dominates_1d_on_thread_bound_instances() {
        let cap = Capacity::phi(7680);
        let items: Vec<PackItem> = (0..10).map(|i| it(i, 200, 120)).collect();
        let p2 = solve_2d(&items, &cap, ValueFunction::default());
        let p1 = solve_1d_filtered(&items, &cap, ValueFunction::default());
        assert!(p2.total_value >= p1.total_value - 1e-12);
        assert_eq!(p2.concurrency(), 2);
    }

    #[test]
    fn exact_fit_is_found() {
        let cap = Capacity {
            mem_mb: 300,
            granularity_mb: 50,
            thread_limit: 240,
            value_ref_threads: 0,
        };
        let items = [it(0, 100, 60), it(1, 100, 60), it(2, 100, 60)];
        let p = solve_2d(&items, &cap, ValueFunction::default());
        assert_eq!(p.concurrency(), 3);
        assert_eq!(p.total_mem_mb, 300);
        assert_eq!(p.total_threads, 180);
    }

    #[test]
    fn indices_are_reported_not_positions() {
        let cap = Capacity::phi(7680);
        let items = [it(42, 100, 60), it(7, 100, 60)];
        let p = solve_2d(&items, &cap, ValueFunction::default());
        assert_eq!(p.selected, vec![7, 42]);
    }

    #[test]
    fn scratch_reuse_matches_fresh_solves() {
        // One scratch across instances of different shapes: stale contents
        // from a bigger instance must not leak into a smaller one.
        let mut scratch = DpScratch::default();
        let caps = [
            Capacity::phi(7680),
            Capacity::phi(1000),
            Capacity::phi(3000),
        ];
        let instances: Vec<Vec<PackItem>> = vec![
            (0..12).map(|i| it(i, 400 + 100 * i as u64, 60)).collect(),
            vec![it(0, 600, 20), it(1, 600, 20), it(2, 300, 20)],
            (0..6).map(|i| it(i, 200, 120)).collect(),
        ];
        for cap in &caps {
            for items in &instances {
                let fresh2 = solve_2d(items, cap, ValueFunction::PaperQuadratic);
                let reused2 =
                    solve_2d_with(items, cap, ValueFunction::PaperQuadratic, &mut scratch);
                assert_eq!(fresh2.selected, reused2.selected);
                assert_eq!(fresh2.total_value, reused2.total_value);
                let fresh1 = solve_1d_filtered(items, cap, ValueFunction::PaperQuadratic);
                let reused1 =
                    solve_1d_filtered_with(items, cap, ValueFunction::PaperQuadratic, &mut scratch);
                assert_eq!(fresh1.selected, reused1.selected);
            }
        }
    }

    #[test]
    fn bitgrid_high_water_mark_shrinks_and_grows() {
        // Grow, shrink, regrow: the high-water reset must leave every
        // freshly mapped grid fully zeroed (a leaked stale bit would
        // corrupt reconstruction, which `scratch_reuse_matches_fresh_solves`
        // checks end-to-end; this checks the mechanism directly).
        let mut words = Vec::new();
        let mut hot = 0usize;
        {
            let mut g = BitGrid::reset(&mut words, &mut hot, 4, 100);
            g.set(3, 99);
            assert!(g.get(3, 99));
        }
        assert_eq!(hot, (4 * 100usize).div_ceil(64));
        {
            // Smaller grid: the dirtied prefix is re-zeroed.
            let g = BitGrid::reset(&mut words, &mut hot, 1, 64);
            assert!(!g.get(0, 35)); // bit 35 aliased old bit (3, 99)? regardless: zero
            for cell in 0..64 {
                assert!(!g.get(0, cell));
            }
        }
        assert_eq!(hot, 1);
        // Capacity was retained from the large grid.
        assert!(words.capacity() >= (4 * 100usize).div_ceil(64));
        {
            // Regrow: words past the old high-water must still read zero.
            let g = BitGrid::reset(&mut words, &mut hot, 4, 100);
            for item in 0..4 {
                for cell in 0..100 {
                    assert!(!g.get(item, cell), "stale bit at ({item}, {cell})");
                }
            }
        }
    }

    #[test]
    fn zero_thread_limit_packs_nothing() {
        let cap = Capacity {
            mem_mb: 1000,
            granularity_mb: 50,
            thread_limit: 0,
            value_ref_threads: 0,
        };
        assert!(solve_2d(&[it(0, 100, 4)], &cap, ValueFunction::default()).is_empty());
    }
}
