//! Items, capacities and packing results.

use serde::{Deserialize, Serialize};

/// One candidate job as the packer sees it: just its declared envelope.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PackItem {
    /// Caller-side index (e.g. position in the pending queue). The packer
    /// never interprets it; [`Packing::selected`] reports these back.
    pub index: usize,
    /// Declared device memory, MB (the knapsack weight).
    pub mem_mb: u64,
    /// Declared thread requirement (drives the value function and the
    /// thread-sum constraint).
    pub threads: u32,
}

/// The knapsack to fill: one device's free envelope.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Capacity {
    /// Free device memory, MB.
    pub mem_mb: u64,
    /// Memory discretization granularity, MB (paper §IV-C suggests 50 MB).
    pub granularity_mb: u64,
    /// Thread *budget* for this packing round — the value-zero rule caps the
    /// packed set's thread sum at this (240 on the Phi; less in the strict
    /// resident-thread ablation).
    pub thread_limit: u32,
    /// Reference `T` for the value function `1 − (t/T)²`. Usually the
    /// hardware thread count even when `thread_limit` is a reduced budget;
    /// `0` means "same as `thread_limit`".
    pub value_ref_threads: u32,
}

impl Capacity {
    /// A standard Xeon Phi knapsack with the given free memory.
    pub fn phi(mem_mb: u64) -> Self {
        Capacity {
            mem_mb,
            granularity_mb: 50,
            thread_limit: 240,
            value_ref_threads: 240,
        }
    }

    /// The thread count the value function normalizes by.
    pub fn value_threads(&self) -> u32 {
        if self.value_ref_threads == 0 {
            self.thread_limit
        } else {
            self.value_ref_threads
        }
    }

    /// Number of memory units at this granularity (rounded down: a partial
    /// trailing unit cannot hold a whole item unit).
    pub fn units(&self) -> usize {
        assert!(self.granularity_mb > 0, "granularity must be positive");
        (self.mem_mb / self.granularity_mb) as usize
    }

    /// An item's weight in units (rounded **up**, so discretization never
    /// lets a packing exceed the real capacity).
    pub fn item_units(&self, mem_mb: u64) -> usize {
        mem_mb.div_ceil(self.granularity_mb) as usize
    }
}

/// The result of packing one knapsack.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Packing {
    /// `index` fields of the selected items, ascending.
    pub selected: Vec<usize>,
    /// Sum of the selected items' values under the value function used.
    pub total_value: f64,
    /// Sum of the selected items' declared memory, MB.
    pub total_mem_mb: u64,
    /// Sum of the selected items' declared threads.
    pub total_threads: u32,
}

impl Packing {
    /// Build a packing from the selected subset of `items`.
    pub fn from_selection(items: &[PackItem], mut selected: Vec<usize>, total_value: f64) -> Self {
        selected.sort_unstable();
        let total_mem_mb = selected.iter().map(|&i| lookup(items, i).mem_mb).sum();
        let total_threads = selected.iter().map(|&i| lookup(items, i).threads).sum();
        Packing {
            selected,
            total_value,
            total_mem_mb,
            total_threads,
        }
    }

    /// Number of items packed — the paper's *job concurrency* objective.
    pub fn concurrency(&self) -> usize {
        self.selected.len()
    }

    /// True when the packing respects both the memory capacity and the
    /// thread limit.
    pub fn is_feasible(&self, cap: &Capacity) -> bool {
        self.total_mem_mb <= cap.mem_mb && self.total_threads <= cap.thread_limit
    }

    /// True when nothing was packed.
    pub fn is_empty(&self) -> bool {
        self.selected.is_empty()
    }
}

fn lookup(items: &[PackItem], index: usize) -> &PackItem {
    items
        .iter()
        .find(|it| it.index == index)
        .expect("selected index not present in item list")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn units_round_capacity_down_and_items_up() {
        let cap = Capacity {
            mem_mb: 7680,
            granularity_mb: 50,
            thread_limit: 240,
            value_ref_threads: 0,
        };
        assert_eq!(cap.units(), 153); // 7680/50 = 153.6 → 153
        assert_eq!(cap.item_units(50), 1);
        assert_eq!(cap.item_units(51), 2);
        assert_eq!(cap.item_units(0), 0);
    }

    #[test]
    fn phi_defaults() {
        let cap = Capacity::phi(7680);
        assert_eq!(cap.granularity_mb, 50);
        assert_eq!(cap.thread_limit, 240);
    }

    #[test]
    fn packing_aggregates_from_selection() {
        let items = [
            PackItem {
                index: 10,
                mem_mb: 100,
                threads: 60,
            },
            PackItem {
                index: 11,
                mem_mb: 200,
                threads: 120,
            },
            PackItem {
                index: 12,
                mem_mb: 400,
                threads: 240,
            },
        ];
        let p = Packing::from_selection(&items, vec![12, 10], 1.5);
        assert_eq!(p.selected, vec![10, 12]);
        assert_eq!(p.total_mem_mb, 500);
        assert_eq!(p.total_threads, 300);
        assert_eq!(p.concurrency(), 2);
        assert!(!p.is_feasible(&Capacity::phi(7680))); // 300 threads > 240
        assert!(p.is_feasible(&Capacity {
            mem_mb: 500,
            granularity_mb: 50,
            thread_limit: 300,
            value_ref_threads: 0,
        }));
    }

    #[test]
    fn empty_packing() {
        let p = Packing::default();
        assert!(p.is_empty());
        assert!(p.is_feasible(&Capacity::phi(0)));
    }
}
