//! Baseline packers.
//!
//! * [`RandomFit`] — the paper's **MCC** configuration: "jobs are selected
//!   randomly at the cluster level: they are packed arbitrarily to Xeon Phi
//!   coprocessors and COSMIC prevents them from oversubscribing memory and
//!   threads" (§V). Memory feasibility is enforced (Condor's matchmaking
//!   checks the advertised Phi memory); thread feasibility is *not* — COSMIC
//!   serializes thread-excess offloads at run time.
//! * [`FirstFit`] — FIFO first-fit, the classic list-scheduling baseline.
//! * [`BestFitDecreasing`] — largest-memory-first best fit, the classic
//!   bin-packing heuristic the related work (§VI) alludes to.

use crate::item::{Capacity, PackItem, Packing};
use crate::value::ValueFunction;
use phishare_sim::DetRng;

/// Common interface: choose a subset of `items` for one knapsack.
pub trait Packer {
    /// Pack one knapsack. `rng` feeds stochastic packers; deterministic
    /// packers ignore it.
    fn pack(&self, items: &[PackItem], cap: &Capacity, rng: &mut DetRng) -> Packing;

    /// Human-readable name for reports.
    fn name(&self) -> &'static str;
}

fn finish(items: &[PackItem], selected: Vec<usize>, cap: &Capacity) -> Packing {
    let total_value: f64 = selected
        .iter()
        .map(|&idx| {
            let it = items
                .iter()
                .find(|i| i.index == idx)
                .expect("own selection");
            ValueFunction::PaperQuadratic.value(it.threads, cap.value_threads())
        })
        .sum();
    Packing::from_selection(items, selected, total_value)
}

/// Random-order first fit under the memory constraint only (MCC).
#[derive(Debug, Clone, Copy, Default)]
pub struct RandomFit;

impl Packer for RandomFit {
    fn pack(&self, items: &[PackItem], cap: &Capacity, rng: &mut DetRng) -> Packing {
        let mut order: Vec<usize> = (0..items.len()).collect();
        rng.shuffle(&mut order);
        let mut free = cap.mem_mb;
        let mut selected = Vec::new();
        for pos in order {
            let it = &items[pos];
            if it.mem_mb <= free {
                free -= it.mem_mb;
                selected.push(it.index);
            }
        }
        finish(items, selected, cap)
    }

    fn name(&self) -> &'static str {
        "random-fit"
    }
}

/// FIFO first fit under memory and thread constraints.
#[derive(Debug, Clone, Copy, Default)]
pub struct FirstFit;

impl Packer for FirstFit {
    fn pack(&self, items: &[PackItem], cap: &Capacity, _rng: &mut DetRng) -> Packing {
        let mut free = cap.mem_mb;
        let mut threads = 0u32;
        let mut selected = Vec::new();
        for it in items {
            if it.mem_mb <= free && threads + it.threads <= cap.thread_limit {
                free -= it.mem_mb;
                threads += it.threads;
                selected.push(it.index);
            }
        }
        finish(items, selected, cap)
    }

    fn name(&self) -> &'static str {
        "first-fit"
    }
}

/// Best-fit decreasing by memory, under memory and thread constraints.
#[derive(Debug, Clone, Copy, Default)]
pub struct BestFitDecreasing;

impl Packer for BestFitDecreasing {
    fn pack(&self, items: &[PackItem], cap: &Capacity, _rng: &mut DetRng) -> Packing {
        let mut order: Vec<usize> = (0..items.len()).collect();
        order.sort_by(|&a, &b| {
            items[b]
                .mem_mb
                .cmp(&items[a].mem_mb)
                .then(items[a].index.cmp(&items[b].index))
        });
        let mut free = cap.mem_mb;
        let mut threads = 0u32;
        let mut selected = Vec::new();
        for pos in order {
            let it = &items[pos];
            if it.mem_mb <= free && threads + it.threads <= cap.thread_limit {
                free -= it.mem_mb;
                threads += it.threads;
                selected.push(it.index);
            }
        }
        finish(items, selected, cap)
    }

    fn name(&self) -> &'static str {
        "best-fit-decreasing"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn it(index: usize, mem_mb: u64, threads: u32) -> PackItem {
        PackItem {
            index,
            mem_mb,
            threads,
        }
    }

    fn rng() -> DetRng {
        DetRng::from_seed(7)
    }

    #[test]
    fn random_fit_respects_memory_only() {
        let cap = Capacity::phi(1000);
        let items: Vec<PackItem> = (0..8).map(|i| it(i, 300, 240)).collect();
        let p = RandomFit.pack(&items, &cap, &mut rng());
        assert!(p.total_mem_mb <= 1000);
        assert_eq!(p.concurrency(), 3);
        // Thread oversubscription is possible by design (COSMIC handles it).
        assert!(p.total_threads > 240);
    }

    #[test]
    fn random_fit_is_random_but_seed_deterministic() {
        let cap = Capacity::phi(1000);
        let items: Vec<PackItem> = (0..10).map(|i| it(i, 400, 60)).collect();
        let a = RandomFit.pack(&items, &cap, &mut DetRng::from_seed(1));
        let b = RandomFit.pack(&items, &cap, &mut DetRng::from_seed(1));
        assert_eq!(a, b);
        let c = RandomFit.pack(&items, &cap, &mut DetRng::from_seed(2));
        // Same count (homogeneous items) but very likely a different subset.
        assert_eq!(a.concurrency(), c.concurrency());
    }

    #[test]
    fn first_fit_takes_fifo_prefix() {
        let cap = Capacity::phi(1000);
        let items = [it(0, 600, 60), it(1, 600, 60), it(2, 300, 60)];
        let p = FirstFit.pack(&items, &cap, &mut rng());
        assert_eq!(p.selected, vec![0, 2]); // 1 doesn't fit after 0
    }

    #[test]
    fn first_fit_respects_thread_limit() {
        let cap = Capacity::phi(7680);
        let items = [it(0, 100, 180), it(1, 100, 180), it(2, 100, 60)];
        let p = FirstFit.pack(&items, &cap, &mut rng());
        assert_eq!(p.selected, vec![0, 2]);
        assert!(p.total_threads <= 240);
    }

    #[test]
    fn best_fit_decreasing_prefers_large_items() {
        let cap = Capacity::phi(1000);
        let items = [it(0, 100, 20), it(1, 900, 20), it(2, 500, 20)];
        let p = BestFitDecreasing.pack(&items, &cap, &mut rng());
        // Sorted: 1 (900) packs, 2 (500) no longer fits, 0 (100) does — the
        // greedy large-first choice, not the count-optimal {0, 2}.
        assert_eq!(p.selected, vec![0, 1]);
    }

    #[test]
    fn names_are_distinct() {
        let names = [RandomFit.name(), FirstFit.name(), BestFitDecreasing.name()];
        assert_eq!(
            names.len(),
            names.iter().collect::<std::collections::HashSet<_>>().len()
        );
    }
}
