//! # phishare-knapsack — the packing core
//!
//! The paper models every Xeon Phi as a **0-1 knapsack** (§IV-C):
//!
//! * item **weight** = the job's declared device memory,
//! * knapsack **capacity** = the device's free memory,
//! * item **value** = `1 − (t/T)²` where `t` is the job's declared threads
//!   and `T` the hardware thread count — so packing *maximizes the number of
//!   concurrent jobs*, biased towards low-thread jobs,
//! * a packed set whose thread sum exceeds `T` is worth **zero** (the
//!   value-zero rule).
//!
//! This crate provides:
//!
//! * [`dp::solve_2d`] — an exact dynamic program over (memory units ×
//!   thread units) that enforces the thread constraint *inside* the DP
//!   (the default solver for the MCCK scheduler);
//! * [`dp::solve_1d_filtered`] — the paper-literal 1-D memory DP followed by
//!   a repair pass that drops highest-thread items until the value-zero rule
//!   is satisfied (kept for the ablation study);
//! * [`value::ValueFunction`] — the paper's quadratic value plus linear /
//!   unit / inverse alternatives for the value-function ablation;
//! * [`baseline`] — the packers the paper compares against implicitly:
//!   random selection (the MCC configuration), FIFO first-fit and
//!   best-fit-decreasing;
//! * [`bb::solve_branch_and_bound`] — an exact branch-and-bound solver with
//!   fractional-bound pruning, a second independent oracle and a solver
//!   comparison point;
//! * [`exhaustive::solve_exhaustive`] — a brute-force oracle for small
//!   instances, used by the property tests to certify DP optimality.
//!
//! Weights are discretized at a configurable granularity (the paper
//! suggests 50 MB, giving `w = 8 GB / 50 MB = 160` columns and the
//! "nearly linear in n" complexity claim of §IV-C).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod bb;
pub mod dp;
pub mod exhaustive;
pub mod item;
pub mod prep;
pub mod value;

pub use baseline::{BestFitDecreasing, FirstFit, RandomFit};
pub use bb::solve_branch_and_bound;
pub use dp::{
    solve_1d_filtered, solve_1d_filtered_with, solve_2d, solve_2d_with, solve_prepped_1d_with,
    solve_prepped_2d_with, DpScratch,
};
pub use item::{Capacity, PackItem, Packing};
pub use prep::{prep_1d, prep_2d, PrepItem, Prepped};
pub use value::ValueFunction;
