//! Candidate preprocessing for the DP solvers: fit filtering and exact
//! multiplicity truncation.
//!
//! Table I workloads are duplication-heavy — many pending jobs share one
//! declared `(memory, threads)` envelope — and most candidates cannot fit a
//! nearly-full device at all. Preprocessing shrinks the DP's item dimension
//! on both counts **without changing the answer**:
//!
//! 1. **Fit filter** — drop items that cannot fit the residual capacity
//!    alone (exactly the filter the raw solvers apply inline).
//! 2. **Multiplicity truncation** — group items by their effective class
//!    `(w, threads)` (the thread-unit cost and the value both derive from
//!    `threads`) and keep only the first
//!    `m_max = min(⌊w_max/w⌋, ⌊t_max/t⌋)` copies (each bound applying only
//!    when its denominator is non-zero).
//!
//! Truncation is *exact*, not heuristic: processing copy `j > m_max` of a
//! class can never strictly improve any DP cell. A strict improvement at
//! cell `c` via copy `j` requires every optimum of `dp[c − (w,t)]` over the
//! already-processed prefix to use all `j−1` earlier copies (if some
//! optimum used fewer, an unused earlier copy could be added at `c`
//! without copy `j`, so `dp[c]` would already equal the candidate value —
//! the update is strict). That forces `j·(w,t) ≤ (w_max, t_max)`
//! component-wise, contradicting `j > m_max`. Hence truncated copies never
//! set a backtracking bit, the DP table evolves byte-identically, and
//! reconstruction — which walks layers in the same relative order — selects
//! the same set. The same argument holds in one dimension for the 1-D
//! variant (and its repair pass sees the identical chosen set, in the
//! identical order, so it drops the identical items).
//!
//! Kept copies are the *earliest* occurrences in queue order, preserving
//! the documented FIFO tie-break: when the DP takes `k` copies of a class
//! it takes the first `k` in candidate order, exactly as the raw solver
//! does.

use crate::dp::THREADS_PER_UNIT;
use crate::item::{Capacity, PackItem};
use std::collections::HashMap;

/// One surviving item of a preprocessed instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrepItem {
    /// Position in the original `items` slice handed to [`prep_2d`] /
    /// [`prep_1d`].
    pub pos: usize,
    /// Memory weight in units (already `item_units`-rounded).
    pub w: usize,
    /// Thread weight in units (`⌈threads / 4⌉`; unused by the 1-D DP).
    pub t: usize,
    /// Declared threads (drives the value function and the 1-D repair).
    pub threads: u32,
}

/// A fit-filtered, multiplicity-truncated DP instance. Everything a solve
/// depends on is in here — two `Prepped` instances with equal `w_max`,
/// `t_max`, `thread_limit`, `value_ref` and equal `(w, threads)` item
/// sequences produce bit-identical solutions, which is what makes the
/// scheduler's content-addressed solve cache sound.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Prepped {
    /// Surviving items, in original order.
    pub items: Vec<PrepItem>,
    /// Capacity in memory units.
    pub w_max: usize,
    /// Capacity in thread units (2-D DP only).
    pub t_max: usize,
    /// Raw thread budget (1-D repair limit; also the 2-D per-item filter).
    pub thread_limit: u32,
    /// Resolved reference `T` for the value function.
    pub value_ref: u32,
    /// Items dropped by multiplicity truncation (diagnostics; fit-filtered
    /// items are not counted).
    pub truncated: usize,
}

/// Per-class multiplicity cap: the largest copy count that can appear in
/// any feasible subset. Dimensions with zero weight impose no bound.
fn class_cap(w: usize, t: usize, w_max: usize, t_max: usize) -> usize {
    let mut cap = usize::MAX;
    if let Some(by_w) = w_max.checked_div(w) {
        cap = cap.min(by_w);
    }
    if let Some(by_t) = t_max.checked_div(t) {
        cap = cap.min(by_t);
    }
    cap
}

/// Preprocess for the 2-D solver ([`crate::solve_prepped_2d_with`]).
/// Applies exactly [`crate::solve_2d_with`]'s fit filter, then truncates
/// multiplicity classes.
pub fn prep_2d(items: &[PackItem], cap: &Capacity) -> Prepped {
    let w_max = cap.units();
    let t_max = (cap.thread_limit / THREADS_PER_UNIT) as usize;
    let mut pre = Prepped {
        items: Vec::new(),
        w_max,
        t_max,
        thread_limit: cap.thread_limit,
        value_ref: cap.value_threads(),
        truncated: 0,
    };
    if w_max == 0 || t_max == 0 {
        return pre;
    }
    let mut kept: HashMap<(usize, u32), usize> = HashMap::new();
    for (pos, it) in items.iter().enumerate() {
        let w = cap.item_units(it.mem_mb);
        let t = it.threads.div_ceil(THREADS_PER_UNIT) as usize;
        if !(w <= w_max && t <= t_max && it.threads <= cap.thread_limit) {
            continue;
        }
        let n = kept.entry((w, it.threads)).or_insert(0);
        if *n >= class_cap(w, t, w_max, t_max) {
            pre.truncated += 1;
            continue;
        }
        *n += 1;
        pre.items.push(PrepItem {
            pos,
            w,
            t,
            threads: it.threads,
        });
    }
    pre
}

/// Preprocess for the 1-D solver ([`crate::solve_prepped_1d_with`]).
/// Applies exactly [`crate::solve_1d_filtered_with`]'s fit filter (memory
/// and per-item thread limit, but no thread-unit dimension), then truncates
/// on the memory dimension only.
pub fn prep_1d(items: &[PackItem], cap: &Capacity) -> Prepped {
    let w_max = cap.units();
    let mut pre = Prepped {
        items: Vec::new(),
        w_max,
        t_max: 0,
        thread_limit: cap.thread_limit,
        value_ref: cap.value_threads(),
        truncated: 0,
    };
    if w_max == 0 {
        return pre;
    }
    let mut kept: HashMap<(usize, u32), usize> = HashMap::new();
    for (pos, it) in items.iter().enumerate() {
        let w = cap.item_units(it.mem_mb);
        if !(w <= w_max && it.threads <= cap.thread_limit) {
            continue;
        }
        let n = kept.entry((w, it.threads)).or_insert(0);
        if *n >= class_cap(w, 0, w_max, 0) {
            pre.truncated += 1;
            continue;
        }
        *n += 1;
        pre.items.push(PrepItem {
            pos,
            w,
            t: it.threads.div_ceil(THREADS_PER_UNIT) as usize,
            threads: it.threads,
        });
    }
    pre
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dp::{solve_prepped_1d_with, solve_prepped_2d_with};
    use crate::{solve_1d_filtered, solve_2d, DpScratch, ValueFunction};

    fn it(index: usize, mem_mb: u64, threads: u32) -> PackItem {
        PackItem {
            index,
            mem_mb,
            threads,
        }
    }

    /// Map a prepped solve back to original item indices.
    fn prepped_selected_2d(items: &[PackItem], cap: &Capacity, vf: ValueFunction) -> Vec<usize> {
        let pre = prep_2d(items, cap);
        let (pos, _) = solve_prepped_2d_with(&pre, vf, &mut DpScratch::default());
        pos.into_iter()
            .map(|p| items[pre.items[p].pos].index)
            .collect()
    }

    fn prepped_selected_1d(items: &[PackItem], cap: &Capacity, vf: ValueFunction) -> Vec<usize> {
        let pre = prep_1d(items, cap);
        let (pos, _) = solve_prepped_1d_with(&pre, vf, &mut DpScratch::default());
        pos.into_iter()
            .map(|p| items[pre.items[p].pos].index)
            .collect()
    }

    #[test]
    fn all_identical_items_truncate_to_capacity_cap() {
        let cap = Capacity::phi(7680);
        // 100 identical items; at 1000 MB each only ⌊153/20⌋ = 7 can ever
        // fit by memory, and ⌊60/10⌋ = 6 by threads → keep 6.
        let items: Vec<PackItem> = (0..100).map(|i| it(i, 1000, 40)).collect();
        let pre = prep_2d(&items, &cap);
        assert_eq!(pre.items.len(), 6);
        assert_eq!(pre.truncated, 94);
        // Earliest copies survive (FIFO tie-break preserved).
        assert_eq!(
            pre.items.iter().map(|p| p.pos).collect::<Vec<_>>(),
            vec![0, 1, 2, 3, 4, 5]
        );
        // And the solve still matches the raw path exactly.
        let raw = solve_2d(&items, &cap, ValueFunction::PaperQuadratic);
        assert_eq!(
            prepped_selected_2d(&items, &cap, ValueFunction::PaperQuadratic),
            raw.selected
        );
    }

    #[test]
    fn all_oversized_items_yield_empty_instance() {
        let cap = Capacity::phi(1000);
        let items = [it(0, 2000, 60), it(1, 9000, 60), it(2, 100, 900)];
        let pre = prep_2d(&items, &cap);
        assert!(pre.items.is_empty());
        assert_eq!(pre.truncated, 0, "fit-filtered items are not 'truncated'");
        assert!(prepped_selected_2d(&items, &cap, ValueFunction::default()).is_empty());
        assert!(solve_2d(&items, &cap, ValueFunction::default()).is_empty());
    }

    #[test]
    fn zero_capacity_yields_empty_instance() {
        let items = [it(0, 100, 4)];
        assert!(prep_2d(&items, &Capacity::phi(0)).items.is_empty());
        assert!(prep_1d(&items, &Capacity::phi(0)).items.is_empty());
        let zero_threads = Capacity {
            mem_mb: 1000,
            granularity_mb: 50,
            thread_limit: 0,
            value_ref_threads: 0,
        };
        assert!(prep_2d(&items, &zero_threads).items.is_empty());
    }

    #[test]
    fn one_d_prep_ignores_thread_units_but_respects_thread_limit() {
        let cap = Capacity::phi(7680);
        // 300-thread item: excluded from both (per-item limit), but an item
        // with threads == limit stays in 1-D even when its *unit* cost would
        // be 2-D borderline.
        let items = [it(0, 100, 300), it(1, 100, 240), it(2, 100, 240)];
        let p1 = prep_1d(&items, &cap);
        assert_eq!(p1.items.iter().map(|p| p.pos).collect::<Vec<_>>(), [1, 2]);
        let raw = solve_1d_filtered(&items, &cap, ValueFunction::PaperQuadratic);
        assert_eq!(
            prepped_selected_1d(&items, &cap, ValueFunction::PaperQuadratic),
            raw.selected
        );
    }

    #[test]
    fn multiplicity_expansion_matches_exhaustive_on_small_instances() {
        use crate::exhaustive::solve_exhaustive;
        // Heavy duplication in a small instance: DP (prepped and raw) and
        // the brute-force oracle must agree on the packed value, and
        // prepped/raw must agree on the exact selected set (value ties are
        // broken by the documented FIFO order in both DP paths).
        let cap = Capacity {
            mem_mb: 2000,
            granularity_mb: 50,
            thread_limit: 240,
            value_ref_threads: 240,
        };
        let mut items = Vec::new();
        for i in 0..6 {
            items.push(it(i, 600, 60)); // class A: ⌊40/12⌋ = 3 by memory cap
        }
        for i in 6..12 {
            items.push(it(i, 400, 80)); // class B
        }
        let pre = prep_2d(&items, &cap);
        assert!(pre.truncated > 0, "expected truncation to engage");
        let raw = solve_2d(&items, &cap, ValueFunction::PaperQuadratic);
        let prepped = prepped_selected_2d(&items, &cap, ValueFunction::PaperQuadratic);
        assert_eq!(prepped, raw.selected);
        // Earliest copies of each class are the ones selected.
        let class_a: Vec<usize> = raw.selected.iter().copied().filter(|&i| i < 6).collect();
        assert_eq!(class_a, (0..class_a.len()).collect::<Vec<_>>());
        let ex = solve_exhaustive(&items, &cap, ValueFunction::PaperQuadratic);
        assert!((ex.total_value - raw.total_value).abs() < 1e-12);
        assert_eq!(ex.selected.len(), raw.selected.len());
    }

    #[test]
    fn prepped_solves_match_raw_on_randomized_instances() {
        // Deterministic pseudo-random sweep (no external RNG): mixed
        // duplication, sizes and capacities, both variants.
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for case in 0..200 {
            let n = (next() % 24) as usize + 1;
            let items: Vec<PackItem> = (0..n)
                .map(|i| {
                    let mem = 100 * (next() % 30 + 1); // 100..3000 MB
                    let threads = 4 * (next() % 70) as u32; // 0..276
                    it(i, mem, threads)
                })
                .collect();
            let cap = Capacity {
                mem_mb: 500 * (next() % 16), // 0..7500 MB
                granularity_mb: 50,
                thread_limit: 240,
                value_ref_threads: 240,
            };
            let raw2 = solve_2d(&items, &cap, ValueFunction::PaperQuadratic);
            let fast2 = prepped_selected_2d(&items, &cap, ValueFunction::PaperQuadratic);
            assert_eq!(fast2, raw2.selected, "2-D diverged on case {case}");
            let raw1 = solve_1d_filtered(&items, &cap, ValueFunction::PaperQuadratic);
            let fast1 = prepped_selected_1d(&items, &cap, ValueFunction::PaperQuadratic);
            assert_eq!(fast1, raw1.selected, "1-D diverged on case {case}");
        }
    }
}
