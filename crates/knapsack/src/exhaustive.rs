//! Brute-force oracle for small instances.
//!
//! Enumerates all `2^n` subsets; used by the property tests to certify that
//! [`crate::dp::solve_2d`] is value-optimal under the discretization, and by
//! the paper's own framing ("the exhaustive approach would be prohibitively
//! time consuming", §IV-C) as the baseline the DP approximates in time.

use crate::item::{Capacity, PackItem, Packing};
use crate::value::ValueFunction;

/// Maximum instance size the oracle accepts (2^22 subsets ≈ 4 M).
pub const MAX_ITEMS: usize = 22;

/// Solve by exhaustive subset enumeration.
///
/// Feasibility uses the same discretized weights as the DP (`item_units`
/// summed against `units()`), so the two solvers optimize the identical
/// problem and their optimal values are directly comparable.
///
/// # Panics
/// Panics when `items.len() > MAX_ITEMS`.
pub fn solve_exhaustive(items: &[PackItem], cap: &Capacity, value_fn: ValueFunction) -> Packing {
    assert!(
        items.len() <= MAX_ITEMS,
        "exhaustive oracle limited to {MAX_ITEMS} items, got {}",
        items.len()
    );
    let w_max = cap.units();
    let units: Vec<usize> = items.iter().map(|it| cap.item_units(it.mem_mb)).collect();
    let values: Vec<f64> = items
        .iter()
        .map(|it| value_fn.value(it.threads, cap.value_threads()))
        .collect();

    let mut best_mask: u32 = 0;
    let mut best_value = 0.0f64;
    for mask in 0u32..(1u32 << items.len()) {
        let mut w = 0usize;
        let mut t = 0u64;
        let mut v = 0.0f64;
        let mut feasible = true;
        for (i, item) in items.iter().enumerate() {
            if mask & (1 << i) != 0 {
                w += units[i];
                t += item.threads as u64;
                if w > w_max || t > cap.thread_limit as u64 {
                    feasible = false;
                    break;
                }
                v += values[i];
            }
        }
        if feasible && v > best_value {
            best_value = v;
            best_mask = mask;
        }
    }

    let selected = items
        .iter()
        .enumerate()
        .filter(|(i, _)| best_mask & (1 << i) != 0)
        .map(|(_, it)| it.index)
        .collect();
    Packing::from_selection(items, selected, best_value)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dp::solve_2d;

    fn it(index: usize, mem_mb: u64, threads: u32) -> PackItem {
        PackItem {
            index,
            mem_mb,
            threads,
        }
    }

    #[test]
    fn oracle_finds_known_optimum() {
        let cap = Capacity::phi(1000);
        let items = [it(0, 600, 120), it(1, 500, 60), it(2, 400, 60)];
        // {1, 2} fits (18 of 20 units) and its two low-thread jobs beat any
        // pairing with the 120-thread job 0.
        let p = solve_exhaustive(&items, &cap, ValueFunction::PaperQuadratic);
        assert_eq!(p.selected, vec![1, 2]);
    }

    #[test]
    fn oracle_matches_dp_on_fixed_instances() {
        let cap = Capacity::phi(4000);
        let items = [
            it(0, 900, 240),
            it(1, 1200, 120),
            it(2, 700, 60),
            it(3, 1500, 180),
            it(4, 400, 16),
            it(5, 2100, 200),
            it(6, 350, 32),
        ];
        for vf in ValueFunction::ALL {
            let oracle = solve_exhaustive(&items, &cap, vf);
            let dp = solve_2d(&items, &cap, vf);
            assert!(
                (oracle.total_value - dp.total_value).abs() < 1e-9,
                "{vf}: oracle {} vs dp {}",
                oracle.total_value,
                dp.total_value
            );
            assert!(dp.is_feasible(&cap));
        }
    }

    #[test]
    fn empty_instance() {
        let p = solve_exhaustive(&[], &Capacity::phi(1000), ValueFunction::default());
        assert!(p.is_empty());
    }

    #[test]
    #[should_panic(expected = "exhaustive oracle limited")]
    fn rejects_large_instances() {
        let items: Vec<PackItem> = (0..23).map(|i| it(i, 10, 4)).collect();
        let _ = solve_exhaustive(&items, &Capacity::phi(1000), ValueFunction::default());
    }
}
