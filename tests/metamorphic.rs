//! Metamorphic relations: how results must move when inputs scale.

use phishare::cluster::{ClusterConfig, Experiment, ExperimentResult};
use phishare::core::ClusterPolicy;
use phishare::workload::{Workload, WorkloadBuilder, WorkloadKind};

fn workload(n: usize, seed: u64) -> Workload {
    WorkloadBuilder::new(WorkloadKind::Table1Mix)
        .count(n)
        .seed(seed)
        .build()
}

fn run(policy: ClusterPolicy, nodes: u32, wl: &Workload) -> ExperimentResult {
    let mut c = ClusterConfig::paper_cluster(policy).with_nodes(nodes);
    c.knapsack.window = 64;
    Experiment::run(&c, wl).unwrap()
}

#[test]
fn more_nodes_never_hurt_much() {
    // Doubling the cluster must not increase makespan (beyond tie-breaking
    // noise) for any policy.
    let wl = workload(80, 21);
    for policy in ClusterPolicy::ALL {
        let small = run(policy, 2, &wl);
        let large = run(policy, 4, &wl);
        assert!(
            large.makespan_secs <= small.makespan_secs * 1.02,
            "{policy}: 4 nodes ({}) slower than 2 nodes ({})",
            large.makespan_secs,
            small.makespan_secs
        );
    }
}

#[test]
fn more_jobs_never_finish_sooner() {
    let small = workload(40, 22);
    let large = workload(80, 22); // superset: per-job substreams make the
                                  // first 40 jobs identical
    for policy in ClusterPolicy::ALL {
        let a = run(policy, 3, &small);
        let b = run(policy, 3, &large);
        assert!(
            b.makespan_secs >= a.makespan_secs,
            "{policy}: 80 jobs ({}) finished before 40 jobs ({})",
            b.makespan_secs,
            a.makespan_secs
        );
    }
}

#[test]
fn makespan_bounded_below_by_longest_job() {
    let wl = workload(30, 23);
    let longest = wl
        .jobs
        .iter()
        .map(|j| j.nominal_duration().as_secs_f64())
        .fold(0.0f64, f64::max);
    for policy in ClusterPolicy::ALL {
        let r = run(policy, 8, &wl);
        assert!(
            r.makespan_secs >= longest,
            "{policy}: makespan {} below longest job {longest}",
            r.makespan_secs
        );
    }
}

#[test]
fn makespan_bounded_above_by_serial_execution() {
    let wl = workload(30, 24);
    let serial: f64 = wl.total_nominal().as_secs_f64();
    for policy in ClusterPolicy::ALL {
        let r = run(policy, 2, &wl);
        // Even one device per node and zero sharing can't be slower than
        // fully serial plus per-job dispatch overheads.
        let slack = 30.0 * 15.0; // generous per-job scheduling overhead
        assert!(
            r.makespan_secs <= serial + slack,
            "{policy}: makespan {} exceeds serial bound {serial}",
            r.makespan_secs
        );
    }
}

#[test]
fn utilization_falls_as_cluster_grows_for_fixed_work() {
    let wl = workload(60, 25);
    let small = run(ClusterPolicy::Mc, 2, &wl);
    let large = run(ClusterPolicy::Mc, 8, &wl);
    assert!(
        large.core_utilization <= small.core_utilization + 0.02,
        "MC utilization should not rise with idle capacity: {} vs {}",
        large.core_utilization,
        small.core_utilization
    );
}

#[test]
fn sharing_utilization_exceeds_exclusive() {
    let wl = workload(100, 26);
    let mc = run(ClusterPolicy::Mc, 3, &wl);
    let mcck = run(ClusterPolicy::Mcck, 3, &wl);
    assert!(
        mcck.thread_utilization > mc.thread_utilization,
        "sharing should raise thread utilization: {} vs {}",
        mcck.thread_utilization,
        mc.thread_utilization
    );
}

#[test]
fn footprint_curve_is_monotone() {
    let wl = workload(60, 27);
    let mut last = f64::INFINITY;
    for nodes in [1u32, 2, 3, 4] {
        let r = run(ClusterPolicy::Mcck, nodes, &wl);
        assert!(
            r.makespan_secs <= last * 1.02,
            "makespan not monotone at {nodes} nodes"
        );
        last = r.makespan_secs;
    }
}
