//! Integration tests for the extension features: the clairvoyant oracle
//! policy, the energy metric, and CSV workload import.

use phishare::cluster::{ClusterConfig, Experiment};
use phishare::core::ClusterPolicy;
use phishare::workload::{workload_from_csv, workload_to_csv, WorkloadBuilder, WorkloadKind};

fn cfg(policy: ClusterPolicy, nodes: u32) -> ClusterConfig {
    let mut c = ClusterConfig::paper_cluster(policy).with_nodes(nodes);
    c.knapsack.window = 64;
    c
}

#[test]
fn oracle_policy_completes_and_is_competitive() {
    let wl = WorkloadBuilder::new(WorkloadKind::Table1Mix)
        .count(80)
        .seed(51)
        .build();
    let mcck = Experiment::run(&cfg(ClusterPolicy::Mcck, 3), &wl).unwrap();
    let oracle = Experiment::run(&cfg(ClusterPolicy::Oracle, 3), &wl).unwrap();
    assert!(oracle.all_completed());
    assert_eq!(oracle.oom_kills, 0);
    // The clairvoyant comparator should be in MCCK's ballpark; allow it to
    // be at most 25 % apart in either direction — a much larger gap would
    // mean one of the two schedulers is broken.
    let ratio = mcck.makespan_secs / oracle.makespan_secs;
    assert!(
        (0.75..1.25).contains(&ratio),
        "MCCK/Oracle makespan ratio {ratio} out of family"
    );
}

#[test]
fn energy_is_positive_and_tracks_cluster_size() {
    let wl = WorkloadBuilder::new(WorkloadKind::Table1Mix)
        .count(40)
        .seed(52)
        .build();
    let small = Experiment::run(&cfg(ClusterPolicy::Mcck, 2), &wl).unwrap();
    let large = Experiment::run(&cfg(ClusterPolicy::Mcck, 6), &wl).unwrap();
    assert!(small.energy_kwh > 0.0);
    // Idle draw dominates: a 3× larger cluster for the same (shorter-lived)
    // work still burns at least as much card energy per unit time; energy
    // per makespan-second must rise with more cards.
    let small_rate = small.energy_kwh / small.makespan_secs;
    let large_rate = large.energy_kwh / large.makespan_secs;
    assert!(
        large_rate > small_rate * 2.0,
        "6 cards should draw ≳3× the power of 2: {small_rate} vs {large_rate}"
    );
}

#[test]
fn energy_lower_bound_is_idle_draw() {
    let wl = WorkloadBuilder::new(WorkloadKind::Table1Mix)
        .count(20)
        .seed(53)
        .build();
    let r = Experiment::run(&cfg(ClusterPolicy::Mc, 2), &wl).unwrap();
    let cfgv = cfg(ClusterPolicy::Mc, 2);
    let idle_kwh = cfgv.phi.idle_watts * 2.0 * r.makespan_secs / 3.6e6;
    let max_kwh = cfgv.phi.max_watts * 2.0 * r.makespan_secs / 3.6e6;
    assert!(
        r.energy_kwh >= idle_kwh,
        "{} < idle floor {idle_kwh}",
        r.energy_kwh
    );
    assert!(
        r.energy_kwh <= max_kwh,
        "{} > TDP ceiling {max_kwh}",
        r.energy_kwh
    );
}

#[test]
fn csv_workload_runs_end_to_end() {
    let csv = "\
name,mem_mb,threads,duration_secs,duty_cycle,offloads
etl-small,500,60,15,0.6,4
etl-small-2,600,60,18,0.6,4
train-batch,2000,180,40,0.8,10
train-batch-2,2500,180,45,0.8,10
inference,300,32,10,0.5,6
";
    let wl = workload_from_csv(csv, 9).unwrap();
    assert_eq!(wl.len(), 5);
    let r = Experiment::run(&cfg(ClusterPolicy::Mcck, 2), &wl).unwrap();
    assert!(r.all_completed());

    // Exported CSV re-imports and reruns identically in shape.
    let back = workload_from_csv(&workload_to_csv(&wl), 9).unwrap();
    let r2 = Experiment::run(&cfg(ClusterPolicy::Mcck, 2), &back).unwrap();
    assert_eq!(r2.completed, 5);
}

#[test]
fn queue_status_is_consistent_mid_run() {
    // Sanity for the condor_q-style reporting: totals over a synthetic
    // queue add up (the runtime path is covered by its own tests).
    use phishare::classad::ClassAd;
    use phishare::condor::{JobQueue, QueueTotals};
    use phishare::sim::SimTime;
    use phishare::workload::JobId;
    let mut q = JobQueue::new();
    for i in 0..10u64 {
        if i % 2 == 0 {
            q.submit_held(JobId(i), ClassAd::new(), SimTime::ZERO)
                .unwrap();
        } else {
            q.submit(JobId(i), ClassAd::new(), SimTime::ZERO).unwrap();
        }
    }
    let t = QueueTotals::of(&q);
    assert_eq!(t.held, 5);
    assert_eq!(t.idle, 5);
    assert_eq!(t.total(), 10);
}
