//! Integration tests for the `phishare` command-line binary.

use std::process::Command;

fn phishare(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_phishare"))
        .args(args)
        .output()
        .expect("binary runs")
}

#[test]
fn run_prints_a_result_table() {
    let out = phishare(&["run", "--policy", "mcck", "--jobs", "20", "--nodes", "2"]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("MCCK"));
    assert!(stdout.contains("20/20"));
}

#[test]
fn run_json_emits_parseable_result() {
    let out = phishare(&[
        "run", "--policy", "mc", "--jobs", "10", "--nodes", "2", "--json",
    ]);
    assert!(out.status.success());
    let v: serde_json::Value = serde_json::from_slice(&out.stdout).expect("valid JSON on stdout");
    assert_eq!(v["policy"], "Mc");
    assert_eq!(v["completed"], 10);
    assert!(v["makespan_secs"].as_f64().unwrap() > 0.0);
}

#[test]
fn compare_covers_all_policies() {
    let out = phishare(&["compare", "--jobs", "15", "--nodes", "2"]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    for p in ["MC", "MCC", "MCCK"] {
        assert!(stdout.contains(p), "missing {p} in:\n{stdout}");
    }
    assert!(!stdout.contains("ORACLE"));
    let with_oracle = phishare(&["compare", "--jobs", "15", "--nodes", "2", "--oracle"]);
    assert!(String::from_utf8_lossy(&with_oracle.stdout).contains("ORACLE"));
}

#[test]
fn workload_round_trips_through_a_file() {
    let dir = std::env::temp_dir().join("phishare-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("wl.csv");
    let out = phishare(&[
        "workload",
        "--count",
        "8",
        "--dist",
        "uniform",
        "--out",
        path.to_str().unwrap(),
    ]);
    assert!(out.status.success());
    // Run the generated file.
    let out = phishare(&[
        "run",
        "--policy",
        "mcc",
        "--nodes",
        "2",
        "--from",
        path.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("8/8"));
}

#[test]
fn footprint_reports_nodes_needed() {
    let out = phishare(&["footprint", "--jobs", "30", "--max-nodes", "3"]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("baseline: MC on 3 nodes"));
    assert!(stdout.contains("Nodes needed"));
}

#[test]
fn errors_are_reported_not_panicked() {
    let out = phishare(&["run"]); // missing --policy
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--policy"));

    let out = phishare(&["run", "--policy", "bogus"]);
    assert!(!out.status.success());

    let out = phishare(&["frobnicate"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));

    let out = phishare(&["run", "--policy", "mc", "--jobs", "NaNaNaN"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--jobs"));
}

#[test]
fn help_prints_usage() {
    let out = phishare(&["help"]);
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("USAGE"));
}
