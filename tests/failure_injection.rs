//! Failure injection: jobs that under-declare memory, and the difference
//! between COSMIC's container kills and raw physical oversubscription.

use phishare::cluster::{ClusterConfig, Experiment};
use phishare::core::ClusterPolicy;
use phishare::workload::{WorkloadBuilder, WorkloadKind};

fn cfg(policy: ClusterPolicy, nodes: u32) -> ClusterConfig {
    let mut c = ClusterConfig::paper_cluster(policy).with_nodes(nodes);
    c.knapsack.window = 64;
    c
}

#[test]
fn cosmic_containers_catch_every_overrun() {
    let wl = WorkloadBuilder::new(WorkloadKind::Table1Mix)
        .count(60)
        .seed(31)
        .misbehaving_fraction(0.4)
        .build();
    let misbehaving = wl.jobs.iter().filter(|j| !j.well_behaved()).count();
    assert!(misbehaving > 0, "injection produced no misbehaving jobs");

    for policy in [ClusterPolicy::Mcc, ClusterPolicy::Mcck] {
        let r = Experiment::run(&cfg(policy, 3), &wl).unwrap();
        assert_eq!(
            r.container_kills, misbehaving,
            "{policy}: every misbehaving job must be container-killed"
        );
        assert_eq!(r.completed, 60 - misbehaving, "{policy}");
        // Containers fire when a job crosses its own declaration, which is
        // before the *physical* limit can be crossed (declared sums fit).
        assert_eq!(
            r.oom_kills, 0,
            "{policy}: containers must preempt the OOM killer"
        );
    }
}

#[test]
fn exclusive_mode_tolerates_overruns_that_fit_physically() {
    // Under MC a job has the whole card; overrunning its own declaration is
    // harmless as long as it stays below physical memory — and our injector
    // caps actual peaks at 1.5 × declared ≤ usable for Table I jobs.
    let wl = WorkloadBuilder::new(WorkloadKind::Table1Mix)
        .count(40)
        .seed(32)
        .misbehaving_fraction(0.5)
        .build();
    let r = Experiment::run(&cfg(ClusterPolicy::Mc, 3), &wl).unwrap();
    assert_eq!(r.completed, 40);
    assert_eq!(r.oom_kills, 0);
    assert_eq!(r.container_kills, 0, "MC runs no COSMIC containers");
}

#[test]
fn container_enforcement_can_be_disabled() {
    // With containers off, overruns land on the device. Whether the OOM
    // killer fires then depends on physical pressure; with the knapsack
    // keeping declared sums under the physical limit, moderate overruns may
    // oversubscribe. The invariant: disabled containers never kill.
    let wl = WorkloadBuilder::new(WorkloadKind::Table1Mix)
        .count(60)
        .seed(33)
        .misbehaving_fraction(0.4)
        .build();
    let mut c = cfg(ClusterPolicy::Mcck, 3);
    c.cosmic.enforce_containers = false;
    let r = Experiment::run(&c, &wl).unwrap();
    assert_eq!(r.container_kills, 0);
    // All jobs either completed or died to the OOM killer.
    assert_eq!(r.completed + r.oom_kills, 60);
}

#[test]
fn crashed_jobs_free_their_capacity() {
    // After container kills, the remaining jobs still finish — the freed
    // memory is repacked, nothing leaks.
    let wl = WorkloadBuilder::new(WorkloadKind::Table1Mix)
        .count(80)
        .seed(34)
        .misbehaving_fraction(0.25)
        .build();
    let r = Experiment::run(&cfg(ClusterPolicy::Mcck, 2), &wl).unwrap();
    assert_eq!(r.completed + r.container_kills, 80);
    assert!(r.completed > 0);
}
