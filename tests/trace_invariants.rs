//! End-to-end safety invariants checked against full lifecycle traces:
//! exclusive allocation really is exclusive, COSMIC really never lets
//! concurrent offload threads exceed the hardware, and every lifecycle is
//! well-formed.

use phishare::cluster::{ClusterConfig, Experiment, TraceEvent};
use phishare::core::ClusterPolicy;
use phishare::workload::{JobId, WorkloadBuilder, WorkloadKind};
use std::collections::BTreeMap;

fn cfg(policy: ClusterPolicy, nodes: u32) -> ClusterConfig {
    let mut c = ClusterConfig::paper_cluster(policy).with_nodes(nodes);
    c.knapsack.window = 64;
    c
}

/// Sweep a node's offload spans and return the maximum concurrent thread
/// sum observed anywhere on it.
fn max_concurrent_threads(spans: &[phishare::cluster::trace::OffloadSpan], node: u32) -> u32 {
    // Event sweep: +threads at start, −threads at end.
    let mut deltas: Vec<(u64, i64)> = Vec::new();
    for s in spans.iter().filter(|s| s.node == node) {
        deltas.push((s.start.ticks(), s.threads as i64));
        deltas.push((s.end.ticks(), -(s.threads as i64)));
    }
    // Ends sort before starts at the same tick (an offload completing frees
    // its threads before the next one starts on that tick).
    deltas.sort_by_key(|(t, d)| (*t, *d));
    let mut current = 0i64;
    let mut peak = 0i64;
    for (_, d) in deltas {
        current += d;
        peak = peak.max(current);
    }
    peak as u32
}

#[test]
fn mc_never_overlaps_offloads_on_a_device() {
    let wl = WorkloadBuilder::new(WorkloadKind::Table1Mix)
        .count(60)
        .seed(41)
        .build();
    let (_, trace) = Experiment::run_traced(&cfg(ClusterPolicy::Mc, 3), &wl).unwrap();
    let spans = trace.offload_spans();
    for node in 1..=3 {
        let node_spans: Vec<_> = spans.iter().filter(|s| s.node == node).collect();
        for (i, a) in node_spans.iter().enumerate() {
            for b in &node_spans[i + 1..] {
                let overlap = a.start < b.end && b.start < a.end;
                // Exclusive allocation: offloads of different jobs never
                // overlap (same-job offloads are sequential by the profile).
                assert!(
                    !overlap || a.job == b.job,
                    "MC overlapped {:?} and {:?} on node {node}",
                    a,
                    b
                );
            }
        }
    }
}

#[test]
fn cosmic_thread_cap_holds_under_all_sharing_policies() {
    let wl = WorkloadBuilder::new(WorkloadKind::Table1Mix)
        .count(80)
        .seed(42)
        .build();
    for policy in [
        ClusterPolicy::Mcc,
        ClusterPolicy::Mcck,
        ClusterPolicy::Oracle,
    ] {
        let (_, trace) = Experiment::run_traced(&cfg(policy, 2), &wl).unwrap();
        let spans = trace.offload_spans();
        for node in 1..=2 {
            let peak = max_concurrent_threads(&spans, node);
            assert!(
                peak <= 240,
                "{policy}: node {node} ran {peak} concurrent offload threads"
            );
        }
    }
}

#[test]
fn lifecycles_are_well_formed() {
    let wl = WorkloadBuilder::new(WorkloadKind::Table1Mix)
        .count(40)
        .seed(43)
        .build();
    let (result, trace) = Experiment::run_traced(&cfg(ClusterPolicy::Mcck, 2), &wl).unwrap();
    assert!(result.all_completed());

    // Per job: Submitted < Pinned ≤ Dispatched < Completed, offload
    // starts/finishes strictly alternate.
    #[derive(Default)]
    struct Life {
        submitted: Option<u64>,
        pinned: Option<u64>,
        dispatched: Option<u64>,
        completed: Option<u64>,
        open_offload: bool,
        offloads: usize,
    }
    let mut lives: BTreeMap<JobId, Life> = BTreeMap::new();
    for ev in &trace.events {
        let Some(job) = ev.job() else {
            continue; // infrastructure events (none in a fault-free run)
        };
        let life = lives.entry(job).or_default();
        let t = ev.at().ticks();
        match ev {
            TraceEvent::Submitted { .. } => life.submitted = Some(t),
            TraceEvent::Pinned { .. } => {
                assert!(life.submitted.is_some());
                life.pinned = Some(t);
            }
            TraceEvent::Dispatched { .. } => {
                assert!(life.pinned.unwrap() <= t);
                life.dispatched = Some(t);
            }
            TraceEvent::OffloadStarted { .. } => {
                assert!(life.dispatched.is_some());
                assert!(!life.open_offload, "{job} started two offloads");
                life.open_offload = true;
            }
            TraceEvent::OffloadFinished { .. } => {
                assert!(life.open_offload, "{job} finished a phantom offload");
                life.open_offload = false;
                life.offloads += 1;
            }
            TraceEvent::Completed { .. } => {
                assert!(!life.open_offload);
                life.completed = Some(t);
            }
            _ => {}
        }
    }
    assert_eq!(lives.len(), 40);
    for (job, life) in &lives {
        assert!(life.completed.is_some(), "{job} never completed");
        let spec = wl.jobs.iter().find(|j| j.id == *job).unwrap();
        assert_eq!(
            life.offloads,
            spec.profile.offload_count(),
            "{job} executed the wrong number of offloads"
        );
        assert!(life.submitted.unwrap() <= life.pinned.unwrap());
        assert!(life.dispatched.unwrap() < life.completed.unwrap());
    }
}

#[test]
fn mc_trace_has_no_queued_offloads() {
    // Without sharing there is nothing to queue behind.
    let wl = WorkloadBuilder::new(WorkloadKind::Table1Mix)
        .count(30)
        .seed(44)
        .build();
    let (_, trace) = Experiment::run_traced(&cfg(ClusterPolicy::Mc, 2), &wl).unwrap();
    assert!(!trace
        .events
        .iter()
        .any(|e| matches!(e, TraceEvent::OffloadQueued { .. })));
}
