//! Property tests over the full simulation: arbitrary small workloads and
//! cluster shapes must preserve the safety and liveness invariants.

use phishare::cluster::{ClusterConfig, Experiment};
use phishare::core::ClusterPolicy;
use phishare::sim::SimDuration;
use phishare::workload::{
    ArrivalProcess, ResourceDist, SyntheticParams, WorkloadBuilder, WorkloadKind,
};
use proptest::prelude::*;

fn arb_policy() -> impl Strategy<Value = ClusterPolicy> {
    prop::sample::select(vec![
        ClusterPolicy::Mc,
        ClusterPolicy::Mcc,
        ClusterPolicy::Mcck,
    ])
}

fn arb_dist() -> impl Strategy<Value = ResourceDist> {
    prop::sample::select(ResourceDist::ALL.to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Liveness + safety: every run drains, completes all well-behaved
    /// jobs, and never oversubscribes physical memory.
    #[test]
    fn all_runs_drain_safely(
        policy in arb_policy(),
        dist in arb_dist(),
        jobs in 5usize..40,
        nodes in 1u32..5,
        seed in 0u64..1000,
    ) {
        let wl = WorkloadBuilder::new(WorkloadKind::Synthetic(dist, SyntheticParams::default()))
            .count(jobs)
            .seed(seed)
            .build();
        let mut cfg = ClusterConfig::paper_cluster(policy).with_nodes(nodes).with_seed(seed);
        cfg.knapsack.window = 48;
        let r = Experiment::run(&cfg, &wl).unwrap();
        prop_assert_eq!(r.completed, jobs);
        prop_assert_eq!(r.oom_kills, 0);
        prop_assert_eq!(r.container_kills, 0);
        prop_assert!(r.thread_utilization <= 1.0 + 1e-9);
        prop_assert!(r.core_utilization <= 1.0 + 1e-9);
    }

    /// Determinism across repeated runs for arbitrary inputs.
    #[test]
    fn arbitrary_runs_are_deterministic(
        policy in arb_policy(),
        jobs in 5usize..25,
        seed in 0u64..1000,
    ) {
        let wl = WorkloadBuilder::new(WorkloadKind::Table1Mix).count(jobs).seed(seed).build();
        let mut cfg = ClusterConfig::paper_cluster(policy).with_nodes(2).with_seed(seed);
        cfg.knapsack.window = 48;
        let a = Experiment::run(&cfg, &wl).unwrap();
        let b = Experiment::run(&cfg, &wl).unwrap();
        prop_assert_eq!(a, b);
    }

    /// Poisson arrivals preserve the same invariants.
    #[test]
    fn dynamic_arrivals_drain_safely(
        jobs in 5usize..30,
        gap_secs in 1u64..10,
        seed in 0u64..1000,
    ) {
        let wl = WorkloadBuilder::new(WorkloadKind::Table1Mix)
            .count(jobs)
            .seed(seed)
            .arrivals(ArrivalProcess::Poisson { mean_gap: SimDuration::from_secs(gap_secs) })
            .build();
        let mut cfg = ClusterConfig::paper_cluster(ClusterPolicy::Mcck).with_nodes(2);
        cfg.knapsack.window = 48;
        let r = Experiment::run(&cfg, &wl).unwrap();
        prop_assert_eq!(r.completed, jobs);
        // Makespan can't precede the last arrival's job finishing its work.
        let last_arrival = wl.arrivals.last().unwrap().as_secs_f64();
        prop_assert!(r.makespan_secs >= last_arrival);
    }

    /// Workload generation invariants on arbitrary synthetic parameters.
    #[test]
    fn synthetic_workloads_always_validate(
        dist in arb_dist(),
        jobs in 1usize..100,
        seed in 0u64..10_000,
    ) {
        let wl = WorkloadBuilder::new(WorkloadKind::Synthetic(dist, SyntheticParams::default()))
            .count(jobs)
            .seed(seed)
            .build();
        prop_assert!(wl.validate().is_ok());
        for job in &wl.jobs {
            prop_assert!(job.thread_req >= 4 && job.thread_req <= 240);
            prop_assert!(job.mem_req_mb <= 6400);
            prop_assert!(job.profile.offload_count() >= 1);
        }
    }
}
