//! Chaos property tests: random fault plans, perturbation stacks, and
//! trace-replay arrival families over Table1Mix workloads.
//!
//! Whatever the injection schedule does — cards resetting mid-offload,
//! nodes vanishing with jobs on them, strikes landing during recovery,
//! thermal derates and latency spikes opening mid-burst — every run must
//! drain with conservative job accounting (completed + killed + held ==
//! submitted), leak no capacity (enforced inside the runtime's post-drain
//! checks), and pass the full trace audit.
//!
//! When a property fails, [`dump_artifact`] writes the shrunken
//! counterexample (seed, config knobs, plans) as JSON under
//! `target/chaos-artifacts/` so the failure can be replayed from a
//! committed file via `phishare run --fault-plan/--perturb-plan`.

use phishare::cluster::fault::{FaultEvent, FaultKind, FaultPlan};
use phishare::cluster::{audit, ClusterConfig, Experiment, PerturbConfig, PerturbPlan};
use phishare::core::ClusterPolicy;
use phishare::sim::{SimDuration, SimTime};
use phishare::workload::{ArrivalProcess, WorkloadBuilder, WorkloadKind};
use proptest::prelude::*;

fn arb_policy() -> impl Strategy<Value = ClusterPolicy> {
    prop::sample::select(vec![
        ClusterPolicy::Mc,
        ClusterPolicy::Mcc,
        ClusterPolicy::Mcck,
    ])
}

/// Random perturbation stacks: any subset of the four perturbation kinds,
/// with gaps/durations dense enough that short runs still hit windows.
fn arb_perturb() -> impl Strategy<Value = PerturbConfig> {
    (
        (any::<bool>(), any::<bool>(), any::<bool>(), any::<bool>()),
        (0.2f64..0.9, 10.0f64..120.0, 5.0f64..60.0, 0.5f64..4.0),
    )
        .prop_map(
            |((derate, latency, stale, jitter), (factor, gap, duration, extra))| {
                let mut p = PerturbConfig {
                    horizon_secs: 900.0,
                    ..PerturbConfig::default()
                };
                if derate {
                    p.derate.mean_gap_secs = gap;
                    p.derate.duration_secs = duration;
                    p.derate.factor = factor;
                }
                if latency {
                    p.latency.mean_gap_secs = gap;
                    p.latency.duration_secs = duration;
                    p.latency.extra_secs = extra;
                }
                if stale {
                    p.stale_ads.mean_gap_secs = gap;
                    p.stale_ads.duration_secs = duration;
                }
                if jitter {
                    p.jitter_max_secs = extra;
                }
                p
            },
        )
}

/// Random arrival families, including the trace-replay shapes.
fn arb_arrivals() -> impl Strategy<Value = ArrivalProcess> {
    prop_oneof![
        Just(ArrivalProcess::AllAtZero),
        (0.5f64..5.0).prop_map(|gap| ArrivalProcess::Poisson {
            mean_gap: SimDuration::from_secs_f64(gap),
        }),
        (0.5f64..5.0, 30.0f64..300.0, 0.0f64..0.95).prop_map(|(gap, period, amp)| {
            ArrivalProcess::Diurnal {
                mean_gap: SimDuration::from_secs_f64(gap),
                period: SimDuration::from_secs_f64(period),
                amplitude: amp,
            }
        }),
        (2.0f64..30.0, 2u32..8, 0.05f64..1.0).prop_map(|(gap, size, bgap)| {
            ArrivalProcess::Bursty {
                mean_gap: SimDuration::from_secs_f64(gap),
                burst_size: size,
                burst_gap: SimDuration::from_secs_f64(bgap),
            }
        }),
        (0.5f64..5.0, 0.0f64..120.0, 0.0f64..1.0).prop_map(|(gap, at, frac)| {
            ArrivalProcess::FlashCrowd {
                mean_gap: SimDuration::from_secs_f64(gap),
                at: SimTime::ZERO + SimDuration::from_secs_f64(at),
                crowd_fraction: frac,
            }
        }),
    ]
}

/// Write a failing case's plans to `target/chaos-artifacts/` so CI can
/// upload them and a developer can replay the exact schedule with
/// `phishare run --fault-plan ... --perturb-plan ...`.
fn dump_artifact(name: &str, cfg: &ClusterConfig, faults: &FaultPlan, perturbs: &PerturbPlan) {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("target")
        .join("chaos-artifacts");
    if std::fs::create_dir_all(&dir).is_err() {
        return; // best-effort: never mask the real assertion failure
    }
    let meta = format!(
        "{{\n  \"test\": \"{name}\",\n  \"policy\": \"{:?}\",\n  \"nodes\": {},\n  \"seed\": {}\n}}\n",
        cfg.policy, cfg.nodes, cfg.seed
    );
    let _ = std::fs::write(dir.join(format!("{name}.meta.json")), meta);
    let _ = std::fs::write(dir.join(format!("{name}.faults.json")), faults.to_json());
    let _ = std::fs::write(
        dir.join(format!("{name}.perturbs.json")),
        perturbs.to_json(),
    );
}

/// Hand-rolled fault events: unlike `FaultPlan::generate`, these may pile
/// several strikes onto one target (absorbed while it is already down) and
/// use pathological downtimes.
fn arb_fault(nodes: u32) -> impl Strategy<Value = FaultEvent> {
    (any::<bool>(), 1..=nodes, 0u64..600_000, 1u64..120_000).prop_map(
        |(reset, node, at_ms, down_ms)| FaultEvent {
            kind: if reset {
                FaultKind::DeviceReset
            } else {
                FaultKind::NodeChurn
            },
            node,
            device: 0,
            at: SimTime::ZERO + SimDuration::from_millis(at_ms),
            downtime: SimDuration::from_millis(down_ms),
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(110))]

    /// ≥ 100 randomized seeds: conservation and audit invariants hold for
    /// every fault schedule.
    #[test]
    fn chaos_preserves_conservation_and_audit_invariants(
        policy in arb_policy(),
        nodes in 2u32..=4,
        jobs in 6usize..=20,
        seed in 0u64..10_000,
        max_retries in 0u32..=3,
        requeue_fallback in any::<bool>(),
        faults in prop::collection::vec(arb_fault(4), 0..8),
    ) {
        let wl = WorkloadBuilder::new(WorkloadKind::Table1Mix)
            .count(jobs)
            .seed(seed)
            .build();
        let mut cfg = ClusterConfig::paper_cluster(policy).with_nodes(nodes);
        cfg.knapsack.window = 64;
        cfg.recovery.max_retries = max_retries;
        if requeue_fallback {
            cfg.recovery.fallback = phishare::cluster::fault::FallbackPolicy::Requeue;
        }

        let mut events: Vec<FaultEvent> = faults
            .into_iter()
            .filter(|f| f.node <= nodes)
            .collect();
        events.sort_by_key(|f| (f.at, f.node, f.device, f.kind as u8));
        let plan = FaultPlan { events };

        // The runtime's own post-drain checks already fail the run on any
        // capacity leak or live job, so an Ok here is itself an invariant.
        let (r, trace) = Experiment::run_with_faults_traced(&cfg, &wl, &plan)
            .expect("chaos run must drain cleanly");

        // Conservation: every submitted job ends exactly one way.
        prop_assert_eq!(
            r.completed + r.container_kills + r.oom_kills + r.held_after_retries,
            r.jobs,
            "job accounting leaked: {:?}",
            r
        );
        // Every injected fault either struck (counted) or was absorbed by
        // an already-down target — never more strikes than injections.
        prop_assert!(r.device_resets + r.node_churns <= plan.len() as u64);
        // The trace-level invariants (fault/recovery pairing, no dispatch
        // to down targets, lifecycle shapes) all hold.
        let violations = audit(&cfg, &wl, &r, &trace);
        prop_assert!(violations.is_empty(), "audit violations: {:?}", violations);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Delta-driven negotiation is observationally identical to the
    /// full-rematch oracle at the whole-experiment level, *including under
    /// fault injection*: device resets and node churn exercise the delta
    /// path's invalidation edges (collector invalidate on churn, requeue +
    /// re-release of victim jobs), and the end-to-end results — every
    /// metric except wall-clock planning time — must still agree exactly.
    #[test]
    fn delta_negotiation_is_oracle_identical_under_faults(
        policy in arb_policy(),
        nodes in 2u32..=4,
        jobs in 6usize..=16,
        seed in 0u64..10_000,
        faults in prop::collection::vec(arb_fault(4), 0..6),
    ) {
        let wl = WorkloadBuilder::new(WorkloadKind::Table1Mix)
            .count(jobs)
            .seed(seed)
            .build();
        let mut cfg = ClusterConfig::paper_cluster(policy).with_nodes(nodes);
        cfg.knapsack.window = 64;

        let mut events: Vec<FaultEvent> = faults
            .into_iter()
            .filter(|f| f.node <= nodes)
            .collect();
        events.sort_by_key(|f| (f.at, f.node, f.device, f.kind as u8));
        let plan = FaultPlan { events };

        cfg.negotiation = phishare::condor::MatchPath::Delta;
        let (delta, _) = Experiment::run_with_faults_traced(&cfg, &wl, &plan)
            .expect("delta run must drain cleanly");
        cfg.negotiation = phishare::condor::MatchPath::Full;
        let (full, _) = Experiment::run_with_faults_traced(&cfg, &wl, &plan)
            .expect("full run must drain cleanly");

        prop_assert_eq!(delta, full, "delta and full experiments diverged");
    }

    /// Quiescence skipping is a pure wall-clock optimization: for every
    /// fault plan × perturbation stack × arrival family, a skip-enabled
    /// run is bit-identical to a never-skipping run — same metrics, same
    /// trace. Stale-ads windows are the sharp edge: a cycle running on
    /// stale ads must *not* report quiescent (it has bookkeeping to do),
    /// and because `stale_ad_skips` participates in result equality, any
    /// skipped-but-not-quiescent cycle would open daylight here. Debug
    /// builds additionally re-run every skipped cycle through the full
    /// oracle inside the runtime and assert it matches nothing.
    #[test]
    fn quiescence_skipping_is_invisible_under_chaos(
        policy in arb_policy(),
        nodes in 2u32..=4,
        jobs in 6usize..=16,
        seed in 0u64..10_000,
        perturb in arb_perturb(),
        arrivals in arb_arrivals(),
        faults in prop::collection::vec(arb_fault(4), 0..5),
    ) {
        let wl = WorkloadBuilder::new(WorkloadKind::Table1Mix)
            .count(jobs)
            .seed(seed)
            .arrivals(arrivals)
            .build();
        let mut cfg = ClusterConfig::paper_cluster(policy)
            .with_nodes(nodes)
            .with_seed(seed);
        cfg.knapsack.window = 64;
        cfg.perturb = perturb;

        let mut events: Vec<FaultEvent> = faults
            .into_iter()
            .filter(|f| f.node <= nodes)
            .collect();
        events.sort_by_key(|f| (f.at, f.node, f.device, f.kind as u8));
        let fault_plan = FaultPlan { events };
        let perturb_plan = PerturbPlan::generate(&cfg);

        cfg.skip_quiescent = true;
        let (skip, skip_trace) = Experiment::run_chaos_traced(
            &cfg, &wl, &fault_plan, &perturb_plan, phishare::cluster::SubstrateMode::Fast,
        )
        .expect("skip-on chaos run must drain cleanly");
        cfg.skip_quiescent = false;
        let (full, full_trace) = Experiment::run_chaos_traced(
            &cfg, &wl, &fault_plan, &perturb_plan, phishare::cluster::SubstrateMode::Fast,
        )
        .expect("skip-off chaos run must drain cleanly");

        if skip != full || skip_trace.events != full_trace.events {
            dump_artifact("quiescence_bit_identity", &cfg, &fault_plan, &perturb_plan);
        }
        prop_assert_eq!(&skip, &full, "quiescence skipping changed the results");
        prop_assert_eq!(
            &skip_trace.events, &full_trace.events,
            "quiescence skipping changed the trace"
        );
        // Equality above already compares stale_ad_skips; spell the
        // stale-ads leg out so a regression names itself.
        prop_assert_eq!(
            skip.stale_ad_skips, full.stale_ad_skips,
            "a stale-ads cycle was skipped as quiescent"
        );
        prop_assert_eq!(full.cycles_skipped, 0, "skip-off run still skipped");
        cfg.skip_quiescent = true;
        let violations = audit(&cfg, &wl, &skip, &skip_trace);
        prop_assert!(violations.is_empty(), "audit violations: {:?}", violations);
    }

    /// The heap-scheduled shared-throughput substrate is bit-identical to
    /// its naive recompute-all oracle for every fault schedule — device
    /// resets clear the engines mid-offload, node churn detaches whole
    /// resident sets — over homogeneous and heterogeneous pools alike.
    #[test]
    fn shared_heap_substrate_is_oracle_identical_under_faults(
        policy in arb_policy(),
        nodes in 2u32..=4,
        jobs in 6usize..=16,
        seed in 0u64..10_000,
        gpu_mix in any::<bool>(),
        faults in prop::collection::vec(arb_fault(4), 0..6),
    ) {
        let wl = WorkloadBuilder::new(WorkloadKind::Table1Mix)
            .count(jobs)
            .seed(seed)
            .build();
        let mut cfg = ClusterConfig::paper_cluster(policy).with_nodes(nodes);
        cfg.knapsack.window = 64;
        if gpu_mix {
            cfg.pool = phishare::cluster::DevicePool::Alternate(
                phishare::cluster::DeviceSku::GpuLike,
            );
        }

        let mut events: Vec<FaultEvent> = faults
            .into_iter()
            .filter(|f| f.node <= nodes)
            .collect();
        events.sort_by_key(|f| (f.at, f.node, f.device, f.kind as u8));
        let plan = FaultPlan { events };

        let (heap, heap_trace) = Experiment::run_with_substrate_faults_traced(
            &cfg, &wl, &plan, phishare::cluster::SubstrateMode::Shared,
        )
        .expect("shared run must drain cleanly");
        let (naive, naive_trace) = Experiment::run_with_substrate_faults_traced(
            &cfg, &wl, &plan, phishare::cluster::SubstrateMode::SharedNaive,
        )
        .expect("naive shared run must drain cleanly");

        prop_assert_eq!(heap, naive, "shared engines diverged under faults");
        prop_assert_eq!(
            heap_trace.events, naive_trace.events,
            "shared traces diverged under faults"
        );
        let violations = audit(&cfg, &wl, &heap, &heap_trace);
        prop_assert!(violations.is_empty(), "audit violations: {:?}", violations);
    }

    /// Perturbation stack × fault plan × trace-replay arrivals: for every
    /// random triple, the substrate oracle pairs stay bit-identical —
    /// fast ≡ keyed on the per-offload reshare model, shared ≡ naive on
    /// the throughput-engine model — and the surviving timeline still
    /// satisfies conservation and the full audit. This is the PR's
    /// acceptance property: chaos must never open daylight between an
    /// engine and its oracle.
    #[test]
    fn chaos_stacks_preserve_substrate_bit_identity(
        policy in arb_policy(),
        nodes in 2u32..=4,
        jobs in 6usize..=16,
        seed in 0u64..10_000,
        perturb in arb_perturb(),
        arrivals in arb_arrivals(),
        faults in prop::collection::vec(arb_fault(4), 0..5),
    ) {
        let wl = WorkloadBuilder::new(WorkloadKind::Table1Mix)
            .count(jobs)
            .seed(seed)
            .arrivals(arrivals)
            .build();
        let mut cfg = ClusterConfig::paper_cluster(policy)
            .with_nodes(nodes)
            .with_seed(seed);
        cfg.knapsack.window = 64;
        cfg.perturb = perturb;

        let mut events: Vec<FaultEvent> = faults
            .into_iter()
            .filter(|f| f.node <= nodes)
            .collect();
        events.sort_by_key(|f| (f.at, f.node, f.device, f.kind as u8));
        let fault_plan = FaultPlan { events };
        let perturb_plan = PerturbPlan::generate(&cfg);

        let run = |mode| {
            Experiment::run_chaos_traced(&cfg, &wl, &fault_plan, &perturb_plan, mode)
                .expect("chaos run must drain cleanly")
        };
        let (fast, fast_trace) = run(phishare::cluster::SubstrateMode::Fast);
        let (keyed, keyed_trace) = run(phishare::cluster::SubstrateMode::Keyed);
        let (shared, shared_trace) = run(phishare::cluster::SubstrateMode::Shared);
        let (naive, naive_trace) = run(phishare::cluster::SubstrateMode::SharedNaive);

        let pair_ok = fast == keyed
            && fast_trace.events == keyed_trace.events
            && shared == naive
            && shared_trace.events == naive_trace.events;
        let conservation_ok = fast.completed
            + fast.container_kills
            + fast.oom_kills
            + fast.held_after_retries
            == fast.jobs;
        let fast_violations = audit(&cfg, &wl, &fast, &fast_trace);
        let shared_violations = audit(&cfg, &wl, &shared, &shared_trace);
        if !pair_ok || !conservation_ok || !fast_violations.is_empty()
            || !shared_violations.is_empty()
        {
            dump_artifact("substrate_bit_identity", &cfg, &fault_plan, &perturb_plan);
        }
        prop_assert_eq!(fast, keyed, "fast/keyed diverged under chaos");
        prop_assert_eq!(
            fast_trace.events, keyed_trace.events,
            "fast/keyed traces diverged under chaos"
        );
        prop_assert_eq!(shared, naive, "shared engines diverged under chaos");
        prop_assert_eq!(
            shared_trace.events, naive_trace.events,
            "shared traces diverged under chaos"
        );
        prop_assert!(conservation_ok, "job accounting leaked under chaos");
        prop_assert!(
            fast_violations.is_empty(),
            "fast audit violations: {:?}",
            fast_violations
        );
        prop_assert!(
            shared_violations.is_empty(),
            "shared audit violations: {:?}",
            shared_violations
        );
    }
}
