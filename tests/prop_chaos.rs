//! Chaos property tests: random fault plans over Table1Mix workloads.
//!
//! Whatever the injection schedule does — cards resetting mid-offload,
//! nodes vanishing with jobs on them, strikes landing during recovery —
//! every run must drain with conservative job accounting (completed +
//! killed + held == submitted), leak no capacity (enforced inside the
//! runtime's post-drain checks), and pass the full trace audit.

use phishare::cluster::fault::{FaultEvent, FaultKind, FaultPlan};
use phishare::cluster::{audit, ClusterConfig, Experiment};
use phishare::core::ClusterPolicy;
use phishare::sim::{SimDuration, SimTime};
use phishare::workload::{WorkloadBuilder, WorkloadKind};
use proptest::prelude::*;

fn arb_policy() -> impl Strategy<Value = ClusterPolicy> {
    prop::sample::select(vec![
        ClusterPolicy::Mc,
        ClusterPolicy::Mcc,
        ClusterPolicy::Mcck,
    ])
}

/// Hand-rolled fault events: unlike `FaultPlan::generate`, these may pile
/// several strikes onto one target (absorbed while it is already down) and
/// use pathological downtimes.
fn arb_fault(nodes: u32) -> impl Strategy<Value = FaultEvent> {
    (any::<bool>(), 1..=nodes, 0u64..600_000, 1u64..120_000).prop_map(
        |(reset, node, at_ms, down_ms)| FaultEvent {
            kind: if reset {
                FaultKind::DeviceReset
            } else {
                FaultKind::NodeChurn
            },
            node,
            device: 0,
            at: SimTime::ZERO + SimDuration::from_millis(at_ms),
            downtime: SimDuration::from_millis(down_ms),
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(110))]

    /// ≥ 100 randomized seeds: conservation and audit invariants hold for
    /// every fault schedule.
    #[test]
    fn chaos_preserves_conservation_and_audit_invariants(
        policy in arb_policy(),
        nodes in 2u32..=4,
        jobs in 6usize..=20,
        seed in 0u64..10_000,
        max_retries in 0u32..=3,
        requeue_fallback in any::<bool>(),
        faults in prop::collection::vec(arb_fault(4), 0..8),
    ) {
        let wl = WorkloadBuilder::new(WorkloadKind::Table1Mix)
            .count(jobs)
            .seed(seed)
            .build();
        let mut cfg = ClusterConfig::paper_cluster(policy).with_nodes(nodes);
        cfg.knapsack.window = 64;
        cfg.recovery.max_retries = max_retries;
        if requeue_fallback {
            cfg.recovery.fallback = phishare::cluster::fault::FallbackPolicy::Requeue;
        }

        let mut events: Vec<FaultEvent> = faults
            .into_iter()
            .filter(|f| f.node <= nodes)
            .collect();
        events.sort_by_key(|f| (f.at, f.node, f.device, f.kind as u8));
        let plan = FaultPlan { events };

        // The runtime's own post-drain checks already fail the run on any
        // capacity leak or live job, so an Ok here is itself an invariant.
        let (r, trace) = Experiment::run_with_faults_traced(&cfg, &wl, &plan)
            .expect("chaos run must drain cleanly");

        // Conservation: every submitted job ends exactly one way.
        prop_assert_eq!(
            r.completed + r.container_kills + r.oom_kills + r.held_after_retries,
            r.jobs,
            "job accounting leaked: {:?}",
            r
        );
        // Every injected fault either struck (counted) or was absorbed by
        // an already-down target — never more strikes than injections.
        prop_assert!(r.device_resets + r.node_churns <= plan.len() as u64);
        // The trace-level invariants (fault/recovery pairing, no dispatch
        // to down targets, lifecycle shapes) all hold.
        let violations = audit(&cfg, &wl, &r, &trace);
        prop_assert!(violations.is_empty(), "audit violations: {:?}", violations);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Delta-driven negotiation is observationally identical to the
    /// full-rematch oracle at the whole-experiment level, *including under
    /// fault injection*: device resets and node churn exercise the delta
    /// path's invalidation edges (collector invalidate on churn, requeue +
    /// re-release of victim jobs), and the end-to-end results — every
    /// metric except wall-clock planning time — must still agree exactly.
    #[test]
    fn delta_negotiation_is_oracle_identical_under_faults(
        policy in arb_policy(),
        nodes in 2u32..=4,
        jobs in 6usize..=16,
        seed in 0u64..10_000,
        faults in prop::collection::vec(arb_fault(4), 0..6),
    ) {
        let wl = WorkloadBuilder::new(WorkloadKind::Table1Mix)
            .count(jobs)
            .seed(seed)
            .build();
        let mut cfg = ClusterConfig::paper_cluster(policy).with_nodes(nodes);
        cfg.knapsack.window = 64;

        let mut events: Vec<FaultEvent> = faults
            .into_iter()
            .filter(|f| f.node <= nodes)
            .collect();
        events.sort_by_key(|f| (f.at, f.node, f.device, f.kind as u8));
        let plan = FaultPlan { events };

        cfg.negotiation = phishare::condor::MatchPath::Delta;
        let (delta, _) = Experiment::run_with_faults_traced(&cfg, &wl, &plan)
            .expect("delta run must drain cleanly");
        cfg.negotiation = phishare::condor::MatchPath::Full;
        let (full, _) = Experiment::run_with_faults_traced(&cfg, &wl, &plan)
            .expect("full run must drain cleanly");

        prop_assert_eq!(delta, full, "delta and full experiments diverged");
    }

    /// The heap-scheduled shared-throughput substrate is bit-identical to
    /// its naive recompute-all oracle for every fault schedule — device
    /// resets clear the engines mid-offload, node churn detaches whole
    /// resident sets — over homogeneous and heterogeneous pools alike.
    #[test]
    fn shared_heap_substrate_is_oracle_identical_under_faults(
        policy in arb_policy(),
        nodes in 2u32..=4,
        jobs in 6usize..=16,
        seed in 0u64..10_000,
        gpu_mix in any::<bool>(),
        faults in prop::collection::vec(arb_fault(4), 0..6),
    ) {
        let wl = WorkloadBuilder::new(WorkloadKind::Table1Mix)
            .count(jobs)
            .seed(seed)
            .build();
        let mut cfg = ClusterConfig::paper_cluster(policy).with_nodes(nodes);
        cfg.knapsack.window = 64;
        if gpu_mix {
            cfg.pool = phishare::cluster::DevicePool::Alternate(
                phishare::cluster::DeviceSku::GpuLike,
            );
        }

        let mut events: Vec<FaultEvent> = faults
            .into_iter()
            .filter(|f| f.node <= nodes)
            .collect();
        events.sort_by_key(|f| (f.at, f.node, f.device, f.kind as u8));
        let plan = FaultPlan { events };

        let (heap, heap_trace) = Experiment::run_with_substrate_faults_traced(
            &cfg, &wl, &plan, phishare::cluster::SubstrateMode::Shared,
        )
        .expect("shared run must drain cleanly");
        let (naive, naive_trace) = Experiment::run_with_substrate_faults_traced(
            &cfg, &wl, &plan, phishare::cluster::SubstrateMode::SharedNaive,
        )
        .expect("naive shared run must drain cleanly");

        prop_assert_eq!(heap, naive, "shared engines diverged under faults");
        prop_assert_eq!(
            heap_trace.events, naive_trace.events,
            "shared traces diverged under faults"
        );
        let violations = audit(&cfg, &wl, &heap, &heap_trace);
        prop_assert!(violations.is_empty(), "audit violations: {:?}", violations);
    }
}
