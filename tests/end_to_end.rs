//! End-to-end integration tests across the whole stack: workload → Condor →
//! scheduler → COSMIC → device, on fixed seeds.

use phishare::cluster::{ClusterConfig, Experiment};
use phishare::core::ClusterPolicy;
use phishare::workload::{Workload, WorkloadBuilder, WorkloadKind};

fn workload(n: usize, seed: u64) -> Workload {
    WorkloadBuilder::new(WorkloadKind::Table1Mix)
        .count(n)
        .seed(seed)
        .build()
}

fn cfg(policy: ClusterPolicy, nodes: u32) -> ClusterConfig {
    let mut c = ClusterConfig::paper_cluster(policy).with_nodes(nodes);
    c.knapsack.window = 64; // keep debug-mode DP cost low
    c
}

#[test]
fn every_policy_completes_every_job() {
    let wl = workload(60, 1);
    for policy in ClusterPolicy::ALL {
        let r = Experiment::run(&cfg(policy, 4), &wl).unwrap();
        assert_eq!(r.completed, 60, "{policy}: {r:?}");
        assert_eq!(r.oom_kills, 0, "{policy} oversubscribed memory");
        assert_eq!(r.container_kills, 0, "{policy} killed well-behaved jobs");
    }
}

#[test]
fn paper_ordering_holds_on_the_real_mix() {
    // MCCK ≤ MCC ≤ MC on makespan for a Table I workload at paper-like
    // pressure (scaled down for debug-mode test speed).
    let wl = workload(120, 2);
    let mc = Experiment::run(&cfg(ClusterPolicy::Mc, 4), &wl).unwrap();
    let mcc = Experiment::run(&cfg(ClusterPolicy::Mcc, 4), &wl).unwrap();
    let mcck = Experiment::run(&cfg(ClusterPolicy::Mcck, 4), &wl).unwrap();
    assert!(
        mcck.makespan_secs < mc.makespan_secs,
        "MCCK {} !< MC {}",
        mcck.makespan_secs,
        mc.makespan_secs
    );
    assert!(
        mcc.makespan_secs < mc.makespan_secs,
        "MCC {} !< MC {}",
        mcc.makespan_secs,
        mc.makespan_secs
    );
    assert!(
        mcck.makespan_secs <= mcc.makespan_secs * 1.05,
        "MCCK {} should not trail MCC {} by more than noise",
        mcck.makespan_secs,
        mcc.makespan_secs
    );
    // Sharing at least 20 % better than exclusive at this pressure.
    assert!(mcck.makespan_reduction_vs(&mc) > 20.0);
}

#[test]
fn runs_are_bit_deterministic() {
    let wl = workload(50, 3);
    for policy in ClusterPolicy::ALL {
        let a = Experiment::run(&cfg(policy, 3), &wl).unwrap();
        let b = Experiment::run(&cfg(policy, 3), &wl).unwrap();
        assert_eq!(a, b, "{policy} not deterministic");
    }
}

#[test]
fn different_seeds_produce_different_workloads_same_invariants() {
    for seed in [10, 11, 12] {
        let wl = workload(40, seed);
        let r = Experiment::run(&cfg(ClusterPolicy::Mcck, 3), &wl).unwrap();
        assert_eq!(r.completed, 40);
        assert!(r.core_utilization > 0.0 && r.core_utilization <= 1.0);
    }
}

#[test]
fn exclusive_policy_reports_paper_like_idle_device() {
    // §III: the MC configuration leaves the manycore around half idle.
    let wl = workload(150, 4);
    let r = Experiment::run(&cfg(ClusterPolicy::Mc, 4), &wl).unwrap();
    assert!(
        (0.30..0.60).contains(&r.core_utilization),
        "MC core utilization {} outside the paper's idle band",
        r.core_utilization
    );
}

#[test]
fn mcck_pins_every_job_exactly_once() {
    let wl = workload(45, 5);
    let r = Experiment::run(&cfg(ClusterPolicy::Mcck, 3), &wl).unwrap();
    assert_eq!(r.pins_issued, 45);
}

#[test]
fn knapsack_never_overpacks_declared_memory() {
    // Indirect invariant: MCCK with well-behaved jobs can never trigger the
    // OOM killer, because Σ committed ≤ Σ declared ≤ usable per device.
    for seed in 0..5 {
        let wl = workload(80, 100 + seed);
        let r = Experiment::run(&cfg(ClusterPolicy::Mcck, 2), &wl).unwrap();
        assert_eq!(r.oom_kills, 0, "seed {seed}");
    }
}

#[test]
fn single_node_cluster_works() {
    let wl = workload(20, 6);
    for policy in ClusterPolicy::ALL {
        let r = Experiment::run(&cfg(policy, 1), &wl).unwrap();
        assert_eq!(r.completed, 20, "{policy}");
    }
}

#[test]
fn multi_device_nodes_work() {
    let wl = workload(40, 7);
    let mut c = cfg(ClusterPolicy::Mcck, 2);
    c.devices_per_node = 2;
    let r = Experiment::run(&c, &wl).unwrap();
    assert_eq!(r.completed, 40);
    // Roughly comparable to 4 single-device nodes.
    let r4 = Experiment::run(&cfg(ClusterPolicy::Mcck, 4), &wl).unwrap();
    assert!(r.makespan_secs < r4.makespan_secs * 1.6);
}

#[test]
fn empty_workload_is_a_noop() {
    let wl = WorkloadBuilder::new(WorkloadKind::Table1Mix)
        .count(0)
        .build();
    let r = Experiment::run(&cfg(ClusterPolicy::Mcck, 2), &wl).unwrap();
    assert_eq!(r.completed, 0);
    assert_eq!(r.makespan_secs, 0.0);
}
