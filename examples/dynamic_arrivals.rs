//! The paper's "dynamic context" extension (§IV-D Limitations): jobs arrive
//! continuously (Poisson process) instead of as a static batch, and the
//! scheduler packs whatever snapshot is pending at each negotiation cycle.
//!
//! ```sh
//! cargo run --release --example dynamic_arrivals [-- <jobs> <mean_gap_secs>]
//! ```

use phishare::cluster::report::{secs, table};
use phishare::cluster::{ClusterConfig, Experiment};
use phishare::core::ClusterPolicy;
use phishare::sim::SimDuration;
use phishare::workload::{ArrivalProcess, WorkloadBuilder, WorkloadKind};

fn main() {
    let mut args = std::env::args().skip(1);
    let jobs: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(400);
    let mean_gap: f64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(3.0);

    let workload = WorkloadBuilder::new(WorkloadKind::Table1Mix)
        .count(jobs)
        .seed(21)
        .arrivals(ArrivalProcess::Poisson {
            mean_gap: SimDuration::from_secs_f64(mean_gap),
        })
        .build();
    let last_arrival = workload.arrivals.last().unwrap().as_secs_f64();
    println!(
        "{jobs} jobs arriving over ≈{last_arrival:.0} s (Poisson, mean gap {mean_gap} s), 8 nodes\n"
    );

    let mut rows = Vec::new();
    for policy in ClusterPolicy::ALL {
        let cfg = ClusterConfig::paper_cluster(policy);
        let r = Experiment::run(&cfg, &workload).expect("runs");
        rows.push(vec![
            policy.to_string(),
            secs(r.makespan_secs),
            secs(r.makespan_secs - last_arrival),
            secs(r.mean_wait_secs),
            secs(r.mean_turnaround_secs),
        ]);
    }
    println!(
        "{}",
        table(
            &[
                "Configuration",
                "Last completion (s)",
                "Drain after last arrival (s)",
                "Mean wait (s)",
                "Mean turnaround (s)",
            ],
            &rows
        )
    );
    println!(
        "\nUnder continuous arrivals the sharing scheduler behaves as the paper\n\
         suggests: each negotiation cycle packs the pending snapshot, so waits\n\
         and turnaround shrink even though the arrival horizon bounds makespan."
    );
}
