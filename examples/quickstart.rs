//! Quickstart: simulate a small Xeon Phi cluster under the sharing-aware
//! scheduler and print what happened.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use phishare::cluster::{ClusterConfig, Experiment};
use phishare::core::ClusterPolicy;
use phishare::workload::{WorkloadBuilder, WorkloadKind};

fn main() {
    // 100 jobs drawn from the paper's Table I application mix.
    let workload = WorkloadBuilder::new(WorkloadKind::Table1Mix)
        .count(100)
        .seed(42)
        .build();
    println!(
        "workload: {} jobs, total nominal work {:.0} s, {} MB declared",
        workload.len(),
        workload.total_nominal().as_secs_f64(),
        workload.total_declared_mem_mb()
    );

    // A 4-node cluster, one 8 GB / 240-thread Xeon Phi per node, running the
    // full MCCK stack: Condor + COSMIC + the knapsack cluster scheduler.
    let config = ClusterConfig::paper_cluster(ClusterPolicy::Mcck).with_nodes(4);

    let result = Experiment::run(&config, &workload).expect("simulation runs");

    println!("policy:            {}", result.policy);
    println!("nodes:             {}", result.nodes);
    println!("completed:         {}/{}", result.completed, result.jobs);
    println!("makespan:          {:.1} s", result.makespan_secs);
    println!("core utilization:  {:.1}%", 100.0 * result.core_utilization);
    println!(
        "thread utilization:{:.1}%",
        100.0 * result.thread_utilization
    );
    println!("mean wait:         {:.1} s", result.mean_wait_secs);
    println!("mean turnaround:   {:.1} s", result.mean_turnaround_secs);
    println!("negotiation cycles:{}", result.negotiation_cycles);
    println!("knapsack pins:     {}", result.pins_issued);
    assert!(result.all_completed());
}
