//! Calibration helper: run the Table II experiment with explicit model
//! parameters to explore the calibration space.
//!
//! ```sh
//! cargo run --release --example calibrate -- \
//!     [jobs] [nodes] [seed] [resident_penalty] [knee] [overcommit] [trigger_s] [dispatch_s]
//! ```

use phishare::cluster::report::{pct, secs, table};
use phishare::cluster::{ClusterConfig, Experiment};
use phishare::core::ClusterPolicy;
use phishare::sim::SimDuration;
use phishare::workload::{ResourceDist, SyntheticParams, WorkloadBuilder, WorkloadKind};

fn main() {
    let a: Vec<String> = std::env::args().skip(1).collect();
    let get = |i: usize, d: f64| a.get(i).and_then(|s| s.parse().ok()).unwrap_or(d);
    let jobs = get(0, 1000.0) as usize;
    let nodes = get(1, 8.0) as u32;
    let seed = get(2, 7.0) as u64;
    let penalty = get(3, 0.006);
    let knee = get(4, 4.0) as u32;
    let overcommit = get(5, 1.5);
    let trigger = get(6, 2.0);
    let dispatch = get(7, 1.0);
    let window = get(9, 256.0) as usize;
    let interval = get(11, 10.0);
    let value_fn = match a.get(10).map(|s| s.as_str()) {
        None | Some("quadratic") => phishare::knapsack::ValueFunction::PaperQuadratic,
        Some("unit") => phishare::knapsack::ValueFunction::Unit,
        Some("linear") => phishare::knapsack::ValueFunction::Linear,
        Some("inverse") => phishare::knapsack::ValueFunction::InverseThreads,
        Some(o) => panic!("unknown value fn {o}"),
    };
    let kind = match a.get(8).map(|s| s.as_str()) {
        None | Some("table1") => WorkloadKind::Table1Mix,
        Some("uniform") => {
            WorkloadKind::Synthetic(ResourceDist::Uniform, SyntheticParams::default())
        }
        Some("normal") => WorkloadKind::Synthetic(ResourceDist::Normal, SyntheticParams::default()),
        Some("low") => WorkloadKind::Synthetic(ResourceDist::LowSkew, SyntheticParams::default()),
        Some("high") => WorkloadKind::Synthetic(ResourceDist::HighSkew, SyntheticParams::default()),
        Some(other) => panic!("unknown workload kind {other}"),
    };

    let workload = WorkloadBuilder::new(kind).count(jobs).seed(seed).build();
    println!(
        "{jobs} jobs, {nodes} nodes, seed {seed}: penalty={penalty} knee={knee} \
         overcommit={overcommit} trigger={trigger}s dispatch={dispatch}s"
    );

    let mut rows = Vec::new();
    let mut baseline = None;
    for policy in ClusterPolicy::ALL {
        let mut cfg = ClusterConfig::paper_cluster(policy).with_nodes(nodes);
        cfg.perf.resident_penalty = penalty;
        cfg.perf.resident_knee = knee;
        cfg.knapsack.thread_overcommit = overcommit;
        cfg.knapsack.window = window;
        cfg.knapsack.value_fn = value_fn;
        cfg.negotiation_interval = SimDuration::from_secs_f64(interval);
        cfg.negotiation_trigger_delay = SimDuration::from_secs_f64(trigger);
        cfg.dispatch_delay = SimDuration::from_secs_f64(dispatch);
        let r = Experiment::run(&cfg, &workload).expect("run");
        let red = baseline
            .as_ref()
            .map(|b| pct(r.makespan_reduction_vs(b)))
            .unwrap_or_else(|| "-".into());
        if baseline.is_none() {
            baseline = Some(r.clone());
        }
        rows.push(vec![
            policy.to_string(),
            secs(r.makespan_secs),
            red,
            pct(100.0 * r.core_utilization),
            pct(100.0 * r.thread_utilization),
            secs(r.mean_offload_queue_secs),
        ]);
    }
    println!(
        "{}",
        table(
            &[
                "Config",
                "Makespan",
                "vs MC",
                "Core util",
                "Thread util",
                "Offl queue"
            ],
            &rows
        )
    );
}
