//! Record a full lifecycle trace of a small MCCK run and render per-node
//! offload Gantt charts — watch the knapsack scheduler keep every device's
//! offload lanes occupied.
//!
//! ```sh
//! cargo run --release --example trace_gantt [-- <jobs> <nodes>]
//! ```

use phishare::cluster::{ClusterConfig, Experiment, TraceEvent};
use phishare::core::ClusterPolicy;
use phishare::workload::{WorkloadBuilder, WorkloadKind};

fn main() {
    let mut args = std::env::args().skip(1);
    let jobs: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(24);
    let nodes: u32 = args.next().and_then(|s| s.parse().ok()).unwrap_or(2);

    let workload = WorkloadBuilder::new(WorkloadKind::Table1Mix)
        .count(jobs)
        .seed(17)
        .build();

    for policy in [ClusterPolicy::Mc, ClusterPolicy::Mcck] {
        let config = ClusterConfig::paper_cluster(policy).with_nodes(nodes);
        let (result, trace) = Experiment::run_traced(&config, &workload).expect("runs");

        println!(
            "— {policy}: {} jobs on {nodes} nodes, makespan {:.0} s, core util {:.0}% —",
            jobs,
            result.makespan_secs,
            100.0 * result.core_utilization
        );
        println!("  (digits = concurrently executing offloads on the node's Phi, '.' = idle)");
        print!("{}", trace.node_gantt(96));

        let queued = trace
            .events
            .iter()
            .filter(|e| matches!(e, TraceEvent::OffloadQueued { .. }))
            .count();
        let spans = trace.offload_spans();
        println!(
            "  {} offloads executed, {} waited in COSMIC's admission queue\n",
            spans.len(),
            queued
        );
    }

    println!(
        "MC's lanes show at most one offload at a time per device; MCCK keeps\n\
         several concurrent — the utilization gap the paper's §III motivates."
    );
}
