//! Footprint reduction in action: how many nodes does each sharing
//! configuration need to match the makespan the exclusive baseline achieves
//! on a full-size cluster? (The paper's Table II / Table III question.)
//!
//! ```sh
//! cargo run --release --example footprint_search [-- <jobs> <baseline_nodes>]
//! ```

use phishare::cluster::report::{pct, secs, table};
use phishare::cluster::{footprint_search, ClusterConfig, Experiment};
use phishare::core::ClusterPolicy;
use phishare::workload::{WorkloadBuilder, WorkloadKind};

fn main() {
    let mut args = std::env::args().skip(1);
    let jobs: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(400);
    let baseline_nodes: u32 = args.next().and_then(|s| s.parse().ok()).unwrap_or(8);

    let workload = WorkloadBuilder::new(WorkloadKind::Table1Mix)
        .count(jobs)
        .seed(11)
        .build();

    let mc_cfg = ClusterConfig::paper_cluster(ClusterPolicy::Mc).with_nodes(baseline_nodes);
    let mc = Experiment::run(&mc_cfg, &workload).expect("baseline runs");
    println!(
        "baseline: MC on {baseline_nodes} nodes finishes {jobs} jobs in {:.0} s\n",
        mc.makespan_secs
    );

    let mut rows = Vec::new();
    for policy in [ClusterPolicy::Mcc, ClusterPolicy::Mcck] {
        let fp = footprint_search(
            &ClusterConfig::paper_cluster(policy),
            &workload,
            mc.makespan_secs,
            baseline_nodes,
            0.02,
        )
        .expect("search runs");
        println!("{policy} search curve:");
        for (nodes, makespan) in &fp.curve {
            let marker = if Some(*nodes) == fp.nodes_required {
                "  ← match"
            } else {
                ""
            };
            println!("  {nodes} nodes → {makespan:.0} s{marker}");
        }
        println!();
        rows.push(vec![
            policy.to_string(),
            fp.nodes_required
                .map(|n| n.to_string())
                .unwrap_or_else(|| format!(">{baseline_nodes}")),
            fp.reduction_vs(baseline_nodes)
                .map(pct)
                .unwrap_or_else(|| "-".into()),
            secs(fp.curve.last().map(|(_, m)| *m).unwrap_or(0.0)),
        ]);
    }
    println!(
        "{}",
        table(
            &[
                "Configuration",
                "Nodes needed",
                "Footprint reduction",
                "Makespan at match (s)"
            ],
            &rows
        )
    );
}
