//! Why sharing needs a guard: demonstrate the raw-MPSS failure modes the
//! paper's §II-C describes — thread oversubscription slowing offloads ~8×,
//! and memory oversubscription waking the OOM killer — and how COSMIC's
//! admission control avoids both.
//!
//! ```sh
//! cargo run --release --example oversubscription_demo
//! ```

use phishare::cosmic::{Admission, CosmicConfig, CosmicDevice};
use phishare::phi::{Affinity, CommitOutcome, PerfModel, PhiConfig, PhiDevice, ProcId};
use phishare::sim::{DetRng, SimDuration, SimTime};

fn main() {
    let phi = PhiConfig::default();
    let mut rng = DetRng::from_seed(5);

    println!("— thread oversubscription (raw MPSS) —");
    let mut device = PhiDevice::new(phi, PerfModel::default(), SimTime::ZERO);
    for p in 1..=2u64 {
        device
            .attach(SimTime::ZERO, ProcId(p), 1000, 240, 500, &mut rng)
            .unwrap();
        device
            .start_offload(
                SimTime::ZERO,
                ProcId(p),
                240,
                SimDuration::from_secs(10),
                Affinity::Unmanaged,
            )
            .unwrap();
    }
    for (proc, at) in device.completions() {
        println!(
            "  {proc}: 10 s of nominal work completes at t={:.1} s ({:.0}% slowdown)",
            at.as_secs_f64(),
            100.0 * (at.as_secs_f64() / 10.0 - 1.0)
        );
    }

    println!("\n— the same two offloads under COSMIC —");
    let mut device = PhiDevice::new(phi, PerfModel::default(), SimTime::ZERO);
    let mut cosmic = CosmicDevice::new(CosmicConfig::default(), &phi);
    for p in 1..=2u64 {
        device
            .attach(SimTime::ZERO, ProcId(p), 1000, 240, 500, &mut rng)
            .unwrap();
        cosmic.register_job(phishare::workload::JobId(p), 1000, 240);
    }
    for p in 1..=2u64 {
        match cosmic.request_offload(
            SimTime::ZERO,
            phishare::workload::JobId(p),
            240,
            SimDuration::from_secs(10),
        ) {
            Admission::Started(grant) => {
                device
                    .start_offload(
                        SimTime::ZERO,
                        ProcId(p),
                        grant.threads,
                        grant.work,
                        grant.affinity,
                    )
                    .unwrap();
                println!("  J{p}: admitted immediately, runs at full rate");
            }
            Admission::Queued => {
                println!("  J{p}: queued — COSMIC serializes to avoid oversubscription");
            }
        }
    }
    for (proc, at) in device.completions() {
        println!(
            "  {proc}: completes at t={:.1} s (no slowdown)",
            at.as_secs_f64()
        );
    }

    println!("\n— memory oversubscription (raw MPSS) —");
    let mut device = PhiDevice::new(phi, PerfModel::default(), SimTime::ZERO);
    let mut attached = 0;
    let mut killed = 0;
    for p in 1..=4u64 {
        match device
            .attach(SimTime::ZERO, ProcId(p), 2500, 60, 2500, &mut rng)
            .unwrap()
        {
            CommitOutcome::Fits => {
                attached += 1;
                println!("  {}: commits 2500 MB — fits", ProcId(p));
            }
            CommitOutcome::OomKilled(victims) => {
                attached += 1;
                killed += victims.len();
                for v in victims {
                    println!(
                        "  {}: commit oversubscribes {} MB of physical memory → OOM killer terminates {v}",
                        ProcId(p),
                        phi.usable_mem_mb()
                    );
                }
            }
        }
    }
    println!(
        "  result: {attached} processes attached, {killed} randomly killed — \
         \"arbitrary process crashes\" (§II-C)"
    );
    println!(
        "\n  COSMIC's containers instead kill only jobs exceeding their own declared\n\
         limit, and the knapsack scheduler never over-packs declared memory, so\n\
         physical oversubscription cannot occur under MCCK."
    );
}
