//! Compare the paper's three cluster configurations (MC / MCC / MCCK) on a
//! Table I workload — a miniature of the paper's Table II experiment.
//!
//! ```sh
//! cargo run --release --example makespan_comparison [-- <jobs> <nodes> <seed>]
//! ```

use phishare::cluster::report::{pct, secs, table};
use phishare::cluster::{ClusterConfig, Experiment, ExperimentResult};
use phishare::core::ClusterPolicy;
use phishare::workload::{WorkloadBuilder, WorkloadKind};

fn main() {
    let mut args = std::env::args().skip(1);
    let jobs: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(1000);
    let nodes: u32 = args.next().and_then(|s| s.parse().ok()).unwrap_or(8);
    let seed: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(7);

    let workload = WorkloadBuilder::new(WorkloadKind::Table1Mix)
        .count(jobs)
        .seed(seed)
        .build();
    println!(
        "{} Table I jobs on {} nodes (seed {seed})\n",
        workload.len(),
        nodes
    );

    let results: Vec<ExperimentResult> = ClusterPolicy::ALL
        .iter()
        .map(|&policy| {
            let config = ClusterConfig::paper_cluster(policy).with_nodes(nodes);
            Experiment::run(&config, &workload).expect("simulation runs")
        })
        .collect();

    let baseline = &results[0];
    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|r| {
            vec![
                r.policy.to_string(),
                secs(r.makespan_secs),
                if r.policy == baseline.policy {
                    "-".to_string()
                } else {
                    pct(r.makespan_reduction_vs(baseline))
                },
                pct(100.0 * r.core_utilization),
                pct(100.0 * r.thread_utilization),
                secs(r.mean_wait_secs),
            ]
        })
        .collect();
    println!(
        "{}",
        table(
            &[
                "Configuration",
                "Makespan (s)",
                "Reduction vs MC",
                "Core util",
                "Thread util",
                "Mean wait (s)",
            ],
            &rows
        )
    );
}
