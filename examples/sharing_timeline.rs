//! Reproduce the paper's Figs. 2 and 3: two offload jobs sharing one Xeon
//! Phi, first with *maximal* (240-thread) offloads that can only interleave
//! into each other's host gaps, then with *partial* (120-thread) offloads
//! that overlap outright.
//!
//! Prints an ASCII Gantt chart per scenario and compares the sequential
//! makespan with the concurrent one.
//!
//! ```sh
//! cargo run --release --example sharing_timeline
//! ```

use phishare::cosmic::{Admission, CosmicConfig, CosmicDevice};
use phishare::phi::{PerfModel, PhiConfig, PhiDevice};
use phishare::sim::{DetRng, Sim, SimDuration, SimTime};
use phishare::workload::{JobId, JobProfile, Segment};

/// Recorded offload execution interval.
struct Span {
    job: JobId,
    start: SimTime,
    end: SimTime,
    threads: u32,
}

#[derive(Debug)]
enum Ev {
    HostDone { job: JobId, seg: usize },
    OffloadDone { job: JobId, generation: u64 },
}

/// Run a set of jobs concurrently on one COSMIC-managed device; returns the
/// offload spans and the makespan.
fn run_concurrent(profiles: &[(JobId, JobProfile)]) -> (Vec<Span>, SimTime) {
    let phi = PhiConfig::default();
    let mut device = PhiDevice::new(phi, PerfModel::default(), SimTime::ZERO);
    let mut cosmic = CosmicDevice::new(CosmicConfig::default(), &phi);
    let mut rng = DetRng::from_seed(1);
    let mut sim: Sim<Ev> = Sim::new();

    let mut seg_of = std::collections::BTreeMap::new();
    let mut started_at = std::collections::BTreeMap::new();
    let mut spans = Vec::new();
    let mut makespan = SimTime::ZERO;

    for (job, profile) in profiles {
        let threads = profile.max_threads();
        device
            .attach(
                SimTime::ZERO,
                phishare::phi::ProcId(job.raw()),
                1000,
                threads,
                500,
                &mut rng,
            )
            .unwrap();
        cosmic.register_job(*job, 1000, threads);
        seg_of.insert(*job, 0usize);
    }

    // Kick off segment 0 of every job.
    let mut pending_starts: Vec<JobId> = profiles.iter().map(|(j, _)| *j).collect();

    loop {
        // Start segments for jobs whose turn it is.
        for job in pending_starts.drain(..) {
            let profile = &profiles.iter().find(|(j, _)| *j == job).unwrap().1;
            let seg = seg_of[&job];
            match profile.segments.get(seg) {
                None => {
                    device
                        .detach(sim.now(), phishare::phi::ProcId(job.raw()))
                        .unwrap();
                    for grant in cosmic.unregister_job(sim.now(), job) {
                        device
                            .start_offload(
                                sim.now(),
                                phishare::phi::ProcId(grant.job.raw()),
                                grant.threads,
                                grant.work,
                                grant.affinity,
                            )
                            .unwrap();
                        started_at.insert(grant.job, (sim.now(), grant.threads));
                    }
                    makespan = sim.now();
                }
                Some(Segment::Host { duration }) => {
                    sim.schedule_after(*duration, Ev::HostDone { job, seg });
                }
                Some(Segment::Offload { threads, work }) => {
                    match cosmic.request_offload(sim.now(), job, *threads, *work) {
                        Admission::Started(grant) => {
                            device
                                .start_offload(
                                    sim.now(),
                                    phishare::phi::ProcId(job.raw()),
                                    grant.threads,
                                    grant.work,
                                    grant.affinity,
                                )
                                .unwrap();
                            started_at.insert(job, (sim.now(), *threads));
                        }
                        Admission::Queued => {}
                    }
                }
            }
        }
        // Re-sync completion predictions.
        let generation = device.generation();
        for (proc, at) in device.completions() {
            sim.schedule_at(
                at,
                Ev::OffloadDone {
                    job: JobId(proc.raw()),
                    generation,
                },
            );
        }

        let Some(ev) = sim.step() else { break };
        match ev {
            Ev::HostDone { job, seg } => {
                if seg_of[&job] != seg {
                    continue;
                }
                *seg_of.get_mut(&job).unwrap() += 1;
                pending_starts.push(job);
            }
            Ev::OffloadDone { job, generation } => {
                if device.generation() != generation || !started_at.contains_key(&job) {
                    continue;
                }
                device
                    .finish_offload(sim.now(), phishare::phi::ProcId(job.raw()))
                    .unwrap();
                let (start, threads) = started_at.remove(&job).unwrap();
                spans.push(Span {
                    job,
                    start,
                    end: sim.now(),
                    threads,
                });
                for grant in cosmic.complete_offload(sim.now(), job) {
                    device
                        .start_offload(
                            sim.now(),
                            phishare::phi::ProcId(grant.job.raw()),
                            grant.threads,
                            grant.work,
                            grant.affinity,
                        )
                        .unwrap();
                    started_at.insert(grant.job, (sim.now(), grant.threads));
                }
                *seg_of.get_mut(&job).unwrap() += 1;
                pending_starts.push(job);
            }
        }
    }
    (spans, makespan)
}

fn gantt(title: &str, profiles: &[(JobId, JobProfile)], spans: &[Span], makespan: SimTime) {
    const WIDTH: usize = 72;
    println!("{title}");
    let scale = WIDTH as f64 / makespan.as_secs_f64();
    for (job, _) in profiles {
        let mut row = vec!['.'; WIDTH];
        for span in spans.iter().filter(|s| s.job == *job) {
            let a = (span.start.as_secs_f64() * scale) as usize;
            let b = ((span.end.as_secs_f64() * scale) as usize).min(WIDTH);
            let glyph = if span.threads >= 240 { '#' } else { '=' };
            for cell in row.iter_mut().take(b).skip(a) {
                *cell = glyph;
            }
        }
        println!("  {job}: {}", row.into_iter().collect::<String>());
    }
    println!("  ('#' = 240-thread offload, '=' = partial offload, '.' = on host / waiting)\n");
}

fn secs(s: u64) -> SimDuration {
    SimDuration::from_secs(s)
}

fn main() {
    // Fig. 2: both jobs offload with ALL 240 hardware threads. Offloads
    // cannot overlap; COSMIC interleaves them into each other's host gaps.
    let j1 = JobProfile::new(vec![
        Segment::offload(240, secs(8)),
        Segment::host(secs(6)),
        Segment::offload(240, secs(8)),
    ]);
    let j2 = JobProfile::new(vec![
        Segment::offload(240, secs(5)),
        Segment::host(secs(4)),
        Segment::offload(240, secs(5)),
        Segment::host(secs(4)),
        Segment::offload(240, secs(5)),
    ]);
    let sequential = j1.total_nominal() + j2.total_nominal();
    let profiles = vec![(JobId(1), j1), (JobId(2), j2)];
    let (spans, makespan) = run_concurrent(&profiles);
    gantt(
        "Fig. 2 — maximal (240-thread) offloads: interleave only",
        &profiles,
        &spans,
        makespan,
    );
    println!(
        "  sequential makespan {:.0} s → concurrent {:.0} s ({:.0}% reduction)\n",
        sequential.as_secs_f64(),
        makespan.as_secs_f64(),
        100.0 * (1.0 - makespan.as_secs_f64() / sequential.as_secs_f64())
    );

    // Fig. 3: offloads use 120 threads — half the device — and overlap
    // outright on disjoint cores.
    let j3 = JobProfile::new(vec![
        Segment::offload(120, secs(8)),
        Segment::host(secs(5)),
        Segment::offload(120, secs(8)),
    ]);
    let j4 = JobProfile::new(vec![
        Segment::offload(120, secs(6)),
        Segment::host(secs(3)),
        Segment::offload(120, secs(6)),
        Segment::host(secs(3)),
        Segment::offload(120, secs(6)),
    ]);
    let sequential = j3.total_nominal() + j4.total_nominal();
    let profiles = vec![(JobId(3), j3), (JobId(4), j4)];
    let (spans, makespan) = run_concurrent(&profiles);
    gantt(
        "Fig. 3 — partial (120-thread) offloads: true overlap",
        &profiles,
        &spans,
        makespan,
    );
    println!(
        "  sequential makespan {:.0} s → concurrent {:.0} s ({:.0}% reduction)",
        sequential.as_secs_f64(),
        makespan.as_secs_f64(),
        100.0 * (1.0 - makespan.as_secs_f64() / sequential.as_secs_f64())
    );
}
