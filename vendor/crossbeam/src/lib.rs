//! Offline stand-in for the `crossbeam` crate.
//!
//! Provides `crossbeam::channel::unbounded`: a multi-producer multi-consumer
//! FIFO channel built on a mutex + condvar. Semantics match crossbeam where
//! the workspace relies on them: cloneable senders and receivers, FIFO
//! delivery, and `recv` returning `Err(RecvError)` once the channel is empty
//! and every sender has been dropped.

#![forbid(unsafe_code)]

/// Multi-producer multi-consumer channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
    }

    /// The sending half of an unbounded channel.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of an unbounded channel.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty but senders remain.
        Empty,
        /// The channel is empty and all senders are gone.
        Disconnected,
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    /// Create an unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Push a value onto the channel. Never blocks.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut queue = match self.shared.queue.lock() {
                Ok(g) => g,
                Err(poison) => poison.into_inner(),
            };
            queue.push_back(value);
            drop(queue);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.senders.fetch_add(1, Ordering::SeqCst);
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.shared.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
                // Last sender: wake blocked receivers so they observe the
                // disconnect.
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Block until a value is available or all senders are dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut queue = match self.shared.queue.lock() {
                Ok(g) => g,
                Err(poison) => poison.into_inner(),
            };
            loop {
                if let Some(value) = queue.pop_front() {
                    return Ok(value);
                }
                if self.shared.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvError);
                }
                queue = match self.shared.ready.wait(queue) {
                    Ok(g) => g,
                    Err(poison) => poison.into_inner(),
                };
            }
        }

        /// Pop a value if one is immediately available.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut queue = match self.shared.queue.lock() {
                Ok(g) => g,
                Err(poison) => poison.into_inner(),
            };
            if let Some(value) = queue.pop_front() {
                return Ok(value);
            }
            if self.shared.senders.load(Ordering::SeqCst) == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Iterate over received values until the channel disconnects.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { receiver: self }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    /// Blocking iterator over a receiver.
    pub struct Iter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel;

    #[test]
    fn fifo_within_one_sender() {
        let (tx, rx) = channel::unbounded();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let got: Vec<i32> = rx.iter().collect();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn recv_errors_after_all_senders_drop() {
        let (tx, rx) = channel::unbounded::<u8>();
        let tx2 = tx.clone();
        drop(tx);
        tx2.send(7).unwrap();
        drop(tx2);
        assert_eq!(rx.recv(), Ok(7));
        assert!(rx.recv().is_err());
    }

    #[test]
    fn cross_thread_delivery() {
        let (tx, rx) = channel::unbounded();
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let tx = tx.clone();
                std::thread::spawn(move || {
                    for i in 0..100 {
                        tx.send(t * 100 + i).unwrap();
                    }
                })
            })
            .collect();
        drop(tx);
        let mut got: Vec<i32> = rx.iter().collect();
        for h in handles {
            h.join().unwrap();
        }
        got.sort_unstable();
        assert_eq!(got, (0..400).collect::<Vec<_>>());
    }
}
