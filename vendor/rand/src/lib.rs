//! Offline stand-in for the `rand` crate (0.9-style API).
//!
//! `StdRng` here is xoshiro256** seeded through a SplitMix64 stream — not the
//! upstream ChaCha12 generator, so streams differ from crates.io `rand`, but
//! the workspace only requires determinism *within* this implementation plus
//! good statistical quality (the sim crate's moment tests check that).
//!
//! Implements exactly the surface the workspace uses:
//! `StdRng::seed_from_u64`, `Rng::random::<f64>()`, and
//! `Rng::random_range` over half-open and inclusive integer/float ranges.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of 64-bit randomness.
pub trait RngCore {
    /// Next raw 64-bit output.
    fn next_u64(&mut self) -> u64;
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Derive a full generator state from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value from the standard distribution of `T`
    /// (uniform `[0, 1)` for floats, uniform over all values for integers).
    fn random<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Sample uniformly from a range.
    ///
    /// # Panics
    /// Panics when the range is empty.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Types samplable by [`Rng::random`].
pub trait StandardSample {
    /// Draw one standard sample.
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    #[inline]
    fn sample_standard<R: RngCore>(rng: &mut R) -> f64 {
        // 53 high bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    #[inline]
    fn sample_standard<R: RngCore>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardSample for u64 {
    #[inline]
    fn sample_standard<R: RngCore>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    #[inline]
    fn sample_standard<R: RngCore>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl StandardSample for i64 {
    #[inline]
    fn sample_standard<R: RngCore>(rng: &mut R) -> i64 {
        rng.next_u64() as i64
    }
}

impl StandardSample for bool {
    #[inline]
    fn sample_standard<R: RngCore>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable by [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draw one uniform sample from the range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

/// Multiply-shift mapping of a raw draw onto `[0, span)` (Lemire's method
/// without the rejection step; bias is < 2^-64 per draw, far below what any
/// statistical test here can see).
#[inline]
fn below<R: RngCore>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! int_range_impls {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(below(rng, span + 1) as $t)
            }
        }
    )*};
}

int_range_impls!(u64, u32, u16, u8, usize, i64, i32, isize);

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::sample_standard(rng);
        let x = self.start + (self.end - self.start) * u;
        // Floating rounding can land exactly on `end`; fold back inside.
        if x >= self.end {
            self.start
                .max(self.end - (self.end - self.start) * f64::EPSILON)
        } else {
            x
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    #[inline]
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
        lo + (hi - lo) * u
    }
}

/// Generators provided by this crate.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256**.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // All-zero state is the one degenerate case for xoshiro.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.random::<u64>(), c.random::<u64>());
    }

    #[test]
    fn unit_floats_in_range_and_uniform_ish() {
        let mut r = StdRng::seed_from_u64(1);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = r.random::<f64>();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean={mean}");
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let a = r.random_range(5u64..=9);
            assert!((5..=9).contains(&a));
            let b = r.random_range(0usize..7);
            assert!(b < 7);
            let c = r.random_range(-2.5f64..7.5);
            assert!((-2.5..7.5).contains(&c));
            let d = r.random_range(0.0f64..=1.0);
            assert!((0.0..=1.0).contains(&d));
            let e = r.random_range(-10i64..10);
            assert!((-10..10).contains(&e));
        }
    }

    #[test]
    fn inclusive_int_range_hits_both_ends() {
        let mut r = StdRng::seed_from_u64(3);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[r.random_range(0usize..=3)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
