//! Offline stand-in for the `proptest` crate.
//!
//! Implements the strategy combinators, collection/sample helpers, `any`,
//! and the `proptest!`/`prop_oneof!`/`prop_assert*!` macros this workspace's
//! property tests use. Differences from upstream, on purpose:
//!
//! * **No shrinking** — a failing case reports the generated inputs as-is.
//! * **Deterministic seeding** — each test derives its RNG from the test
//!   name and case index, so failures reproduce without persistence files
//!   (`.proptest-regressions` files are ignored).
//! * **Mini-regex string strategies** — `&str` patterns support the subset
//!   the tests use: literals, `.`, character classes with ranges, and the
//!   `{m,n}` / `{n}` / `?` / `*` / `+` quantifiers.

#![forbid(unsafe_code)]

pub mod test_runner {
    //! Case execution: config, errors, and the deterministic runner.

    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};

    /// Per-test configuration.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of successful cases required for the test to pass.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Configuration running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Why a single case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// The case failed an assertion: the test fails.
        Fail(String),
        /// The case was rejected (`prop_assume!`): retried without counting.
        Reject(String),
    }

    /// Deterministic RNG handed to strategies during generation.
    #[derive(Debug, Clone)]
    pub struct TestRng(StdRng);

    impl TestRng {
        /// RNG for one case of one test, derived from the test name and a
        /// per-case stream index.
        pub fn for_case(test_name: &str, stream: u64) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            TestRng(StdRng::seed_from_u64(
                h ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15),
            ))
        }

        /// Uniform draw in `[0, n)`.
        pub fn below(&mut self, n: u64) -> u64 {
            assert!(n > 0, "TestRng::below(0)");
            ((self.0.next_u64() as u128 * n as u128) >> 64) as u64
        }
    }

    impl RngCore for TestRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    /// Run one property test: keep generating cases until `config.cases`
    /// succeed, retrying rejected cases, panicking on the first failure.
    pub fn execute<F>(config: &ProptestConfig, test_name: &str, mut case: F)
    where
        F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    {
        let mut passed = 0u32;
        let mut rejected = 0u32;
        let max_rejects = config.cases.saturating_mul(16).max(1024);
        let mut stream = 0u64;
        while passed < config.cases {
            let mut rng = TestRng::for_case(test_name, stream);
            stream += 1;
            match case(&mut rng) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject(reason)) => {
                    rejected += 1;
                    if rejected > max_rejects {
                        panic!(
                            "proptest `{test_name}`: too many rejected cases \
                             ({rejected}; last reason: {reason})"
                        );
                    }
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!(
                        "proptest `{test_name}` failed after {passed} passing \
                         case(s) (rng stream {}):\n{msg}",
                        stream - 1
                    );
                }
            }
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and its combinators.

    use crate::test_runner::TestRng;
    use rand::SampleRange;
    use std::fmt::Debug;
    use std::ops::{Range, RangeInclusive};
    use std::rc::Rc;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value: Debug;

        /// Generate one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            O: Debug,
            F: Fn(Self::Value) -> O,
        {
            Map { source: self, f }
        }

        /// Keep only values satisfying `keep`; regenerates on rejection.
        fn prop_filter<F>(self, reason: &'static str, keep: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                source: self,
                reason,
                keep,
            }
        }

        /// Generate a value, then generate from a strategy derived from it.
        fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S2: Strategy,
            F: Fn(Self::Value) -> S2,
        {
            FlatMap { source: self, f }
        }

        /// Recursive strategies: `self` is the leaf case and `branch` builds
        /// one more level on top of an inner strategy. `depth` bounds the
        /// nesting level; `_size`/`_branch` are accepted for upstream API
        /// compatibility but the tree shape is controlled by `branch` itself.
        fn prop_recursive<S2, F>(
            self,
            depth: u32,
            _size: u32,
            _branch: u32,
            branch: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            S2: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> S2 + 'static,
        {
            BoxedStrategy::new(Recursive {
                base: self.boxed(),
                branch: Rc::new(move |inner| branch(inner).boxed()),
                depth,
            })
        }

        /// Type-erase into a cloneable [`BoxedStrategy`].
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy::new(self)
        }
    }

    trait DynStrategy<T> {
        fn generate_dyn(&self, rng: &mut TestRng) -> T;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// A cloneable, type-erased strategy.
    pub struct BoxedStrategy<T>(Rc<dyn DynStrategy<T>>);

    impl<T> BoxedStrategy<T> {
        fn new<S: Strategy<Value = T> + 'static>(strategy: S) -> Self {
            BoxedStrategy(Rc::new(strategy))
        }
    }

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T> std::fmt::Debug for BoxedStrategy<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("BoxedStrategy")
        }
    }

    impl<T: Debug> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate_dyn(rng)
        }
    }

    /// Always generates a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone + Debug> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        O: Debug,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.source.generate(rng))
        }
    }

    /// See [`Strategy::prop_filter`].
    #[derive(Debug, Clone)]
    pub struct Filter<S, F> {
        source: S,
        reason: &'static str,
        keep: F,
    }

    impl<S, F> Strategy for Filter<S, F>
    where
        S: Strategy,
        F: Fn(&S::Value) -> bool,
    {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1000 {
                let candidate = self.source.generate(rng);
                if (self.keep)(&candidate) {
                    return candidate;
                }
            }
            panic!("prop_filter: 1000 consecutive rejections ({})", self.reason);
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Debug, Clone)]
    pub struct FlatMap<S, F> {
        source: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            let intermediate = self.source.generate(rng);
            (self.f)(intermediate).generate(rng)
        }
    }

    struct Recursive<T> {
        base: BoxedStrategy<T>,
        branch: Rc<dyn Fn(BoxedStrategy<T>) -> BoxedStrategy<T>>,
        depth: u32,
    }

    impl<T: Debug> Strategy for Recursive<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let levels = rng.below(self.depth as u64 + 1) as u32;
            let mut strategy = self.base.clone();
            for _ in 0..levels {
                strategy = (self.branch)(strategy);
            }
            strategy.generate(rng)
        }
    }

    /// Weighted choice between boxed alternatives (built by `prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<(u32, BoxedStrategy<T>)>,
        total_weight: u64,
    }

    impl<T> Union<T> {
        /// Build from `(weight, strategy)` arms.
        pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
            let total_weight = arms.iter().map(|(w, _)| *w as u64).sum();
            assert!(total_weight > 0, "prop_oneof!: zero total weight");
            Union { arms, total_weight }
        }
    }

    impl<T> Clone for Union<T> {
        fn clone(&self) -> Self {
            Union {
                arms: self.arms.clone(),
                total_weight: self.total_weight,
            }
        }
    }

    impl<T: Debug> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let mut pick = rng.below(self.total_weight);
            for (weight, arm) in &self.arms {
                if pick < *weight as u64 {
                    return arm.generate(rng);
                }
                pick -= *weight as u64;
            }
            unreachable!("weighted pick out of range")
        }
    }

    macro_rules! numeric_range_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    self.clone().sample_from(rng)
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    self.clone().sample_from(rng)
                }
            }
        )*};
    }

    numeric_range_strategies!(u8, u16, u32, u64, usize, i32, i64, isize, f64);

    macro_rules! tuple_strategies {
        ($(($($name:ident : $idx:tt),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategies! {
        (A: 0)
        (A: 0, B: 1)
        (A: 0, B: 1, C: 2)
        (A: 0, B: 1, C: 2, D: 3)
        (A: 0, B: 1, C: 2, D: 3, E: 4)
        (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
    }

    impl<S: Strategy> Strategy for Vec<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            self.iter().map(|s| s.generate(rng)).collect()
        }
    }

    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            crate::regex_gen::generate(self, rng)
        }
    }
}

mod regex_gen {
    //! Miniature regex-driven string generator for `&str` strategies.

    use crate::test_runner::TestRng;

    struct Part {
        choices: Vec<char>,
        min: usize,
        max: usize,
    }

    fn printable_ascii() -> Vec<char> {
        (0x20u8..=0x7E).map(char::from).collect()
    }

    /// Generate one string matching `pattern`.
    pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
        let parts = parse(pattern);
        let mut out = String::new();
        for part in &parts {
            let span = (part.max - part.min) as u64 + 1;
            let n = part.min + rng.below(span) as usize;
            for _ in 0..n {
                out.push(part.choices[rng.below(part.choices.len() as u64) as usize]);
            }
        }
        out
    }

    fn parse(pattern: &str) -> Vec<Part> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut parts = Vec::new();
        let mut i = 0;
        while i < chars.len() {
            let choices = match chars[i] {
                '.' => {
                    i += 1;
                    printable_ascii()
                }
                '[' => {
                    i += 1;
                    let set = parse_class(&chars, &mut i);
                    assert!(
                        chars.get(i) == Some(&']'),
                        "regex_gen: unterminated class in {pattern:?}"
                    );
                    i += 1;
                    set
                }
                '\\' => {
                    i += 1;
                    let c = *chars
                        .get(i)
                        .unwrap_or_else(|| panic!("regex_gen: dangling escape in {pattern:?}"));
                    i += 1;
                    escape_set(c)
                }
                c => {
                    assert!(
                        !"(){}|+*?".contains(c),
                        "regex_gen: unsupported metacharacter {c:?} in {pattern:?}"
                    );
                    i += 1;
                    vec![c]
                }
            };
            let (min, max) = parse_quantifier(&chars, &mut i, pattern);
            assert!(!choices.is_empty(), "regex_gen: empty class in {pattern:?}");
            parts.push(Part { choices, min, max });
        }
        parts
    }

    fn escape_set(c: char) -> Vec<char> {
        match c {
            'd' => ('0'..='9').collect(),
            'w' => ('a'..='z')
                .chain('A'..='Z')
                .chain('0'..='9')
                .chain(std::iter::once('_'))
                .collect(),
            's' => vec![' ', '\t', '\n'],
            'n' => vec!['\n'],
            't' => vec!['\t'],
            other => vec![other],
        }
    }

    fn parse_class(chars: &[char], i: &mut usize) -> Vec<char> {
        let mut set = Vec::new();
        while *i < chars.len() && chars[*i] != ']' {
            let c = if chars[*i] == '\\' {
                *i += 1;
                let esc = chars[*i];
                *i += 1;
                let expanded = escape_set(esc);
                if expanded.len() > 1 {
                    set.extend(expanded);
                    continue;
                }
                expanded[0]
            } else {
                let c = chars[*i];
                *i += 1;
                c
            };
            // Range `a-z` when a `-` sits between two members.
            if chars.get(*i) == Some(&'-') && chars.get(*i + 1).is_some_and(|&n| n != ']') {
                let hi = chars[*i + 1];
                *i += 2;
                set.extend((c..=hi).filter(|ch| ch.is_ascii() || c <= *ch));
            } else {
                set.push(c);
            }
        }
        set
    }

    fn parse_quantifier(chars: &[char], i: &mut usize, pattern: &str) -> (usize, usize) {
        match chars.get(*i) {
            Some('{') => {
                *i += 1;
                let mut min_text = String::new();
                while chars.get(*i).is_some_and(|c| c.is_ascii_digit()) {
                    min_text.push(chars[*i]);
                    *i += 1;
                }
                let min: usize = min_text.parse().unwrap_or(0);
                let max = match chars.get(*i) {
                    Some(',') => {
                        *i += 1;
                        let mut max_text = String::new();
                        while chars.get(*i).is_some_and(|c| c.is_ascii_digit()) {
                            max_text.push(chars[*i]);
                            *i += 1;
                        }
                        max_text.parse().unwrap_or(min + 8)
                    }
                    _ => min,
                };
                assert!(
                    chars.get(*i) == Some(&'}'),
                    "regex_gen: unterminated quantifier in {pattern:?}"
                );
                *i += 1;
                (min, max)
            }
            Some('?') => {
                *i += 1;
                (0, 1)
            }
            Some('*') => {
                *i += 1;
                (0, 8)
            }
            Some('+') => {
                *i += 1;
                (1, 8)
            }
            _ => (1, 1),
        }
    }
}

pub mod arbitrary {
    //! `any::<T>()` support.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::{Rng, RngCore};
    use std::fmt::Debug;
    use std::marker::PhantomData;

    /// Types with a canonical strategy.
    pub trait Arbitrary: Debug + Sized {
        /// Generate one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    /// Strategy returned by [`any`].
    #[derive(Debug)]
    pub struct Any<T>(PhantomData<T>);

    impl<T> Clone for Any<T> {
        fn clone(&self) -> Self {
            Any(PhantomData)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    impl Arbitrary for () {
        fn arbitrary(_rng: &mut TestRng) -> Self {}
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! int_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            // Mix magnitudes but stay finite: upstream any::<f64> includes
            // special values, which none of these tests rely on.
            let unit = rng.random::<f64>() * 2.0 - 1.0;
            match rng.next_u64() % 4 {
                0 => 0.0,
                1 => unit,
                2 => unit * 1e6,
                _ => unit * 1e-6,
            }
        }
    }

    impl Arbitrary for char {
        fn arbitrary(rng: &mut TestRng) -> Self {
            char::from(0x20u8 + (rng.next_u64() % 95) as u8)
        }
    }
}

pub mod collection {
    //! Collection strategies: `vec` and `btree_map`.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::BTreeMap;
    use std::fmt::Debug;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive bounds on a generated collection's length.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize {
            self.min + rng.below((self.max - self.min) as u64 + 1) as usize
        }
    }

    /// Strategy for `Vec<T>` with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.pick(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeMap<K, V>` with a target size drawn from `size`
    /// (duplicate keys may make the result smaller, as upstream).
    pub fn btree_map<K: Strategy, V: Strategy>(
        key: K,
        value: V,
        size: impl Into<SizeRange>,
    ) -> BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        BTreeMapStrategy {
            key,
            value,
            size: size.into(),
        }
    }

    /// See [`btree_map`].
    #[derive(Debug, Clone)]
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: SizeRange,
    }

    impl<K: Strategy, V: Strategy> Strategy for BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let target = self.size.pick(rng);
            let mut map = BTreeMap::new();
            for _ in 0..target.saturating_mul(4).max(4) {
                if map.len() >= target {
                    break;
                }
                map.insert(self.key.generate(rng), self.value.generate(rng));
            }
            map
        }
    }
}

pub mod sample {
    //! Uniform selection from explicit option lists.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::fmt::Debug;

    /// Uniformly pick one of `options`.
    pub fn select<T: Clone + Debug>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select: empty option list");
        Select { options }
    }

    /// See [`select`].
    #[derive(Debug, Clone)]
    pub struct Select<T> {
        options: Vec<T>,
    }

    impl<T: Clone + Debug> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.options[rng.below(self.options.len() as u64) as usize].clone()
        }
    }
}

pub mod prelude {
    //! The glob-import surface: `use proptest::prelude::*;`.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// Namespace alias matching upstream's `prop::` paths.
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// Define property tests. See the crate docs for the supported subset.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $config:expr;) => {};
    (config = $config:expr;
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $config;
            $crate::test_runner::execute(&__config, stringify!($name), |__rng| {
                let mut __inputs = ::std::string::String::new();
                $(
                    let $pat = {
                        let __value =
                            $crate::strategy::Strategy::generate(&($strategy), __rng);
                        __inputs.push_str(&::std::format!(
                            "  {} = {:?}\n", stringify!($pat), &__value
                        ));
                        __value
                    };
                )+
                let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                match __outcome {
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(__msg)) => {
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                            ::std::format!("{__msg}\nfailing input:\n{__inputs}"),
                        ))
                    }
                    other => other,
                }
            });
        }
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
}

/// Weighted or unweighted choice between strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strategy))),+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $((1u32, $crate::strategy::Strategy::boxed($strategy))),+
        ])
    };
}

/// Assert inside a property test; failure reports the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Assert equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let __left = &$left;
        let __right = &$right;
        $crate::prop_assert!(
            *__left == *__right,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), __left, __right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let __left = &$left;
        let __right = &$right;
        $crate::prop_assert!(
            *__left == *__right,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}\n{}",
            stringify!($left), stringify!($right), __left, __right,
            ::std::format!($($fmt)+)
        );
    }};
}

/// Assert inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let __left = &$left;
        let __right = &$right;
        $crate::prop_assert!(
            *__left != *__right,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left), stringify!($right), __left
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let __left = &$left;
        let __right = &$right;
        $crate::prop_assert!(
            *__left != *__right,
            "assertion failed: `{} != {}`\n  both: {:?}\n{}",
            stringify!($left), stringify!($right), __left,
            ::std::format!($($fmt)+)
        );
    }};
}

/// Reject the current case (retried without counting against `cases`).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                ::std::string::String::from(stringify!($cond)),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_filters_generate_in_bounds() {
        let mut rng = crate::test_runner::TestRng::for_case("ranges", 0);
        for _ in 0..200 {
            let x = (3u64..10).generate(&mut rng);
            assert!((3..10).contains(&x));
            let y = (0.0f64..=1.0).generate(&mut rng);
            assert!((0.0..=1.0).contains(&y));
            let even = (0u64..100)
                .prop_filter("even", |n| n % 2 == 0)
                .generate(&mut rng);
            assert_eq!(even % 2, 0);
        }
    }

    #[test]
    fn regex_strategies_match_shape() {
        let mut rng = crate::test_runner::TestRng::for_case("regex", 0);
        for _ in 0..200 {
            let s = "[a-z][a-z0-9_]{0,6}".generate(&mut rng);
            assert!(!s.is_empty() && s.len() <= 7, "{s:?}");
            assert!(s.chars().next().unwrap().is_ascii_lowercase());
            let t = ".{0,8}".generate(&mut rng);
            assert!(t.len() <= 8);
        }
    }

    #[test]
    fn oneof_honors_weights_roughly() {
        let mut rng = crate::test_runner::TestRng::for_case("weights", 0);
        let strategy = prop_oneof![9 => Just(true), 1 => Just(false)];
        let trues = (0..1000).filter(|_| strategy.generate(&mut rng)).count();
        assert!(trues > 800, "trues={trues}");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn macro_pipeline_works(
            v in prop::collection::vec(0u64..50, 1..10),
            flag in any::<bool>(),
            name in "[a-z]{1,4}",
        ) {
            prop_assume!(!v.is_empty());
            prop_assert!(v.iter().all(|&x| x < 50));
            prop_assert_eq!(flag, flag);
            prop_assert_ne!(name.len(), 0);
        }
    }
}
