//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives behind parking_lot's panic-free, non-poisoning
//! API: `lock()` returns the guard directly instead of a `Result`, and a
//! poisoned mutex is recovered transparently (the data is still consistent for
//! our use cases — worker panics abort the whole test anyway).

#![forbid(unsafe_code)]

use std::sync::TryLockError;

/// A mutual-exclusion primitive with parking_lot's infallible `lock`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(poison) => poison.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(g) => g,
            Err(poison) => poison.into_inner(),
        }
    }

    /// Try to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(poison)) => Some(poison.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(poison) => poison.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(1u32);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(());
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }
}
