//! Offline stand-in for the `criterion` crate.
//!
//! Provides the measurement API surface the workspace's benches use
//! (`benchmark_group`, `bench_function`, `bench_with_input`, `iter`,
//! `Throughput`, `BenchmarkId`, the `criterion_group!`/`criterion_main!`
//! macros) with a simple wall-clock sampler: a short warm-up sizes the
//! per-sample iteration count, then a fixed number of timed samples are
//! taken and min/median/max per-iteration times printed. No statistical
//! analysis, plotting, or CLI filtering — runs exercise every target.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

const WARMUP: Duration = Duration::from_millis(60);
const TARGET_SAMPLE_TIME: Duration = Duration::from_millis(12);

/// Benchmark harness entry point.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 15 }
    }
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("\nbench group: {name}");
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size,
        }
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Accepted for API compatibility; throughput rates are not reported.
    pub fn throughput(&mut self, _throughput: Throughput) -> &mut Self {
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&self.name, &id.into_benchmark_id(), self.sample_size, |b| {
            f(b)
        });
        self
    }

    /// Run one benchmark parameterised by `input`.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        run_benchmark(&self.name, &id.into_benchmark_id(), self.sample_size, |b| {
            f(b, input)
        });
        self
    }

    /// End the group. (No-op beyond upstream API parity.)
    pub fn finish(self) {}
}

/// Identifier of a single benchmark, optionally parameterised.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            text: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Identifier from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

/// Conversion into [`BenchmarkId`] accepted by the `bench_*` methods.
pub trait IntoBenchmarkId {
    /// Convert to the canonical identifier.
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            text: self.to_string(),
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { text: self }
    }
}

/// Units-processed-per-iteration declaration (reported nowhere; API parity).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Bytes, decimal-scaled (upstream parity).
    BytesDecimal(u64),
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    iters_per_sample: u64,
    samples: Vec<Duration>,
    sample_size: usize,
    calibrated: bool,
}

impl Bencher {
    /// Measure `routine`, running it many times per timed sample.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        if !self.calibrated {
            // Warm up and size the per-sample iteration count so each
            // sample runs for roughly TARGET_SAMPLE_TIME.
            let warm_start = Instant::now();
            let mut warm_iters: u64 = 0;
            while warm_start.elapsed() < WARMUP {
                black_box(routine());
                warm_iters += 1;
            }
            let per_iter = warm_start.elapsed().as_nanos().max(1) / warm_iters.max(1) as u128;
            self.iters_per_sample =
                (TARGET_SAMPLE_TIME.as_nanos() / per_iter.max(1)).clamp(1, 1_000_000) as u64;
            self.calibrated = true;
        }
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(routine());
            }
            self.samples.push(start.elapsed());
        }
    }
}

fn run_benchmark<F>(group: &str, id: &BenchmarkId, sample_size: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher {
        iters_per_sample: 1,
        samples: Vec::new(),
        sample_size,
        calibrated: false,
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        eprintln!("  {group}/{}: no samples recorded", id.text);
        return;
    }
    let mut per_iter: Vec<f64> = bencher
        .samples
        .iter()
        .map(|d| d.as_nanos() as f64 / bencher.iters_per_sample as f64)
        .collect();
    per_iter.sort_by(|a, b| a.total_cmp(b));
    let min = per_iter[0];
    let median = per_iter[per_iter.len() / 2];
    let max = per_iter[per_iter.len() - 1];
    eprintln!(
        "  {group}/{}: time [{} {} {}] ({} samples x {} iters)",
        id.text,
        fmt_ns(min),
        fmt_ns(median),
        fmt_ns(max),
        per_iter.len(),
        bencher.iters_per_sample,
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Bundle benchmark functions under one runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running each group. CLI arguments are ignored.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("vendor-selftest");
        group.sample_size(3);
        group.bench_function("sum", |b| b.iter(|| (0u64..100).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("sum_to", 50u64), &50u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }

    criterion_group!(benches, trivial_bench);

    #[test]
    fn harness_runs() {
        benches();
    }
}
