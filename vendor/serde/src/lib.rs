//! Offline stand-in for the `serde` crate.
//!
//! Real serde abstracts over data formats with a visitor-based data model;
//! this workspace only ever serializes to and from JSON, so the stand-in
//! collapses the model to a JSON-shaped [`Value`] tree:
//!
//! * [`Serialize`] renders `self` into a [`Value`];
//! * [`Deserialize`] rebuilds `Self` from a [`Value`];
//! * the `derive` feature re-exports the companion proc macros, which follow
//!   real serde's externally-tagged conventions (unit enum variants as bare
//!   strings, data variants as single-key objects, newtype structs as their
//!   inner value) so serialized output looks the same as upstream.
//!
//! `serde_json` (also vendored) supplies the text format on top of [`Value`].

#![forbid(unsafe_code)]

use std::collections::BTreeMap;
use std::fmt;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped value tree — the interchange type between [`Serialize`],
/// [`Deserialize`] and the `serde_json` text format.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// JSON `null`.
    #[default]
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Negative (or any signed) integer.
    Int(i64),
    /// Non-negative integer.
    UInt(u64),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object. `BTreeMap` gives deterministic (sorted) key order, matching
    /// real serde_json's default map representation.
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// Numeric view, if this is any number variant.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::UInt(u) => Some(*u as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Signed-integer view.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::UInt(u) => i64::try_from(*u).ok(),
            _ => None,
        }
    }

    /// Unsigned-integer view.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Int(i) => u64::try_from(*i).ok(),
            Value::UInt(u) => Some(*u),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean view.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Array view.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Object view.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Is this `Value::Null`?
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Object member lookup.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }
}

static NULL: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;
    /// `v["key"]` — yields `Null` for missing members, like serde_json.
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        self.as_array().and_then(|a| a.get(idx)).unwrap_or(&NULL)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<i64> for Value {
    fn eq(&self, other: &i64) -> bool {
        match self {
            Value::Int(i) => i == other,
            Value::UInt(u) => i64::try_from(*u).is_ok_and(|u| u == *other),
            Value::Float(f) => *f == *other as f64,
            _ => false,
        }
    }
}

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        self.as_f64() == Some(*other)
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

/// Error produced by [`Deserialize`] implementations.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    /// Build an error from any displayable message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Render `self` into a [`Value`] tree.
pub trait Serialize {
    /// Convert to the interchange value.
    fn to_value(&self) -> Value;
}

/// Rebuild `Self` from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Convert from the interchange value.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// --- primitive impls ------------------------------------------------------

macro_rules! signed_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                if *self < 0 { Value::Int(*self as i64) } else { Value::UInt(*self as u64) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                v.as_i64()
                    .and_then(|i| <$t>::try_from(i).ok())
                    .ok_or_else(|| Error::custom(concat!("expected ", stringify!($t))))
            }
        }
    )*};
}

macro_rules! unsigned_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                v.as_u64()
                    .and_then(|u| <$t>::try_from(u).ok())
                    .ok_or_else(|| Error::custom(concat!("expected ", stringify!($t))))
            }
        }
    )*};
}

signed_impls!(i8, i16, i32, i64, isize);
unsigned_impls!(u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64().ok_or_else(|| Error::custom("expected number"))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64()
            .map(|f| f as f32)
            .ok_or_else(|| Error::custom("expected number"))
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_bool().ok_or_else(|| Error::custom("expected boolean"))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| Error::custom("expected string"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v.as_str() {
            Some(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            _ => Err(Error::custom("expected single-character string")),
        }
    }
}

// --- composite impls ------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::custom("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_object()
            .ok_or_else(|| Error::custom("expected object"))?
            .iter()
            .map(|(k, v)| V::from_value(v).map(|v| (k.clone(), v)))
            .collect()
    }
}

macro_rules! tuple_impls {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let a = v.as_array().ok_or_else(|| Error::custom("expected array for tuple"))?;
                const LEN: usize = 0 $(+ { let _ = $idx; 1 })+;
                if a.len() != LEN {
                    return Err(Error::custom("tuple length mismatch"));
                }
                Ok(($($name::from_value(&a[$idx])?,)+))
            }
        }
    )*};
}

tuple_impls! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

// --- support for derived code --------------------------------------------

/// Extract and deserialize a named struct field. Used by generated code.
#[doc(hidden)]
pub fn __field<T: Deserialize>(
    m: &BTreeMap<String, Value>,
    key: &str,
    ty: &str,
) -> Result<T, Error> {
    match m.get(key) {
        Some(v) => T::from_value(v).map_err(|e| Error::custom(format!("{ty}.{key}: {e}"))),
        None => Err(Error::custom(format!("missing field `{key}` in {ty}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(i64::from_value(&17i32.to_value()).unwrap(), 17);
        assert_eq!(u32::from_value(&Value::UInt(9)).unwrap(), 9);
        assert!(u8::from_value(&Value::UInt(300)).is_err());
        assert_eq!(f64::from_value(&Value::Int(-2)).unwrap(), -2.0);
        assert_eq!(
            String::from_value(&"hi".to_value()).unwrap(),
            "hi".to_string()
        );
        assert_eq!(Option::<u64>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(
            Vec::<u64>::from_value(&vec![1u64, 2].to_value()).unwrap(),
            vec![1, 2]
        );
    }

    #[test]
    fn value_access_and_comparisons() {
        let mut m = BTreeMap::new();
        m.insert("n".to_string(), Value::UInt(10));
        m.insert("s".to_string(), Value::Str("Mc".into()));
        let v = Value::Object(m);
        assert_eq!(v["n"], 10);
        assert_eq!(v["s"], "Mc");
        assert!(v["missing"].is_null());
        assert_eq!(v["n"].as_f64(), Some(10.0));
    }
}
