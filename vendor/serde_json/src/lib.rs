//! Offline stand-in for the `serde_json` crate.
//!
//! Serializes the vendored `serde` crate's [`Value`] tree to JSON text and
//! parses JSON text back, exposing the `to_string` / `to_string_pretty` /
//! `from_str` / `from_slice` / [`Value`] / [`Error`] surface the workspace
//! uses. Matches real serde_json behavior where tests can see it: objects
//! print in sorted key order (the map representation is a `BTreeMap`),
//! floats print in shortest-round-trip form, and non-finite floats become
//! `null`.

#![forbid(unsafe_code)]

use std::fmt::Write as _;

pub use serde::Value;
use serde::{Deserialize, Serialize};

/// Error type for both serialization and parsing.
pub type Error = serde::Error;

/// Result alias matching serde_json's.
pub type Result<T> = std::result::Result<T, Error>;

/// Serialize a value to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialize a value to human-readable JSON (two-space indentation).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Convert any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value> {
    Ok(value.to_value())
}

/// Deserialize a value from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let value = Parser::new(s).parse_document()?;
    T::from_value(&value)
}

/// Deserialize a value from JSON bytes.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error::custom(format!("invalid UTF-8: {e}")))?;
    from_str(s)
}

// --- writer ---------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => {
            let _ = write!(out, "{i}");
        }
        Value::UInt(u) => {
            let _ = write!(out, "{u}");
        }
        Value::Float(f) => {
            if f.is_finite() {
                // `{:?}` is Rust's shortest-round-trip float form; it always
                // contains '.' or 'e', so the value re-parses as a float.
                let _ = write!(out, "{f:?}");
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// --- parser ---------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn parse_document(mut self) -> Result<Value> {
        let v = self.parse_value()?;
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err(self.error("trailing characters after JSON document"));
        }
        Ok(v)
    }

    fn error(&self, msg: &str) -> Error {
        Error::custom(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, expected: u8) -> Result<()> {
        if self.peek() == Some(expected) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected `{}`", expected as char)))
        }
    }

    fn eat_keyword(&mut self, word: &str, value: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error("invalid literal"))
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.eat_keyword("null", Value::Null),
            Some(b't') => self.eat_keyword("true", Value::Bool(true)),
            Some(b'f') => self.eat_keyword("false", Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.error("expected `,` or `]` in array")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.eat(b'{')?;
        let mut map = std::collections::BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.eat(b':')?;
            let value = self.parse_value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.error("expected `,` or `}` in object")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.eat(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'b') => s.push('\u{08}'),
                        Some(b'f') => s.push('\u{0c}'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let first = self.parse_hex4()?;
                            let c = if (0xD800..0xDC00).contains(&first) {
                                // Surrogate pair.
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let second = self.parse_hex4()?;
                                    let combined = 0x10000
                                        + ((first - 0xD800) << 10)
                                        + (second.wrapping_sub(0xDC00) & 0x3FF);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(first)
                            };
                            s.push(c.ok_or_else(|| self.error("invalid \\u escape"))?);
                            // parse_hex4 already advanced past the digits.
                            continue;
                        }
                        _ => return Err(self.error("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume the whole run of plain bytes up to the next
                    // quote or backslash in one slice. Control characters
                    // must be escaped per RFC 8259; everything else copies
                    // verbatim (multi-byte UTF-8 included — the input came
                    // from a &str, so the run sits on scalar boundaries).
                    let start = self.pos;
                    while let Some(&c) = self.bytes.get(self.pos) {
                        if c == b'"' || c == b'\\' {
                            break;
                        }
                        if c < 0x20 {
                            return Err(self.error("unescaped control character in string"));
                        }
                        self.pos += 1;
                    }
                    let run = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.error("invalid UTF-8 in string"))?;
                    s.push_str(run);
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.error("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.error("invalid \\u escape"))?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| self.error("invalid \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("invalid number"))?;
        if !is_float {
            if let Some(stripped) = text.strip_prefix('-') {
                if stripped.parse::<u64>().is_ok() {
                    if let Ok(i) = text.parse::<i64>() {
                        return Ok(Value::Int(i));
                    }
                }
            } else if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| self.error("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_scalars() {
        for src in ["null", "true", "false", "42", "-17", "3.25", "\"hi\""] {
            let v: Value = from_str(src).unwrap();
            assert_eq!(to_string(&v).unwrap(), src);
        }
    }

    #[test]
    fn parses_nested_structures() {
        let v: Value = from_str(r#" {"a": [1, 2.5, {"b": "x\ny"}], "c": null} "#).unwrap();
        assert_eq!(v["a"][0], 1);
        assert_eq!(v["a"][1], 2.5);
        assert_eq!(v["a"][2]["b"], "x\ny");
        assert!(v["c"].is_null());
        assert_eq!(
            to_string(&v).unwrap(),
            r#"{"a":[1,2.5,{"b":"x\ny"}],"c":null}"#
        );
    }

    #[test]
    fn pretty_output_shape() {
        let v: Value = from_str(r#"{"a":1,"b":[true]}"#).unwrap();
        assert_eq!(
            to_string_pretty(&v).unwrap(),
            "{\n  \"a\": 1,\n  \"b\": [\n    true\n  ]\n}"
        );
    }

    #[test]
    fn float_round_trip_is_exact() {
        for f in [0.1, 1.0 / 3.0, 1e300, -2.5e-7, f64::MAX, f64::MIN_POSITIVE] {
            let s = to_string(&f).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(back, f, "{s}");
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("1 2").is_err());
        assert!(from_str::<Value>("nul").is_err());
        assert!(from_str::<Value>("\"\\q\"").is_err());
    }

    #[test]
    fn long_strings_parse_in_linear_time() {
        // Regression: parse_string used to re-validate the entire remaining
        // document for every character, making large manifests quadratic.
        // 2 MB of string data must parse near-instantly; the wall-clock
        // bound is generous enough to never flake, but the old code took
        // tens of seconds here.
        let payload = "x".repeat(4096);
        let doc = format!(
            "[{}]",
            std::iter::repeat_with(|| format!("\"ab\\n{payload}é\""))
                .take(512)
                .collect::<Vec<_>>()
                .join(",")
        );
        let start = std::time::Instant::now();
        let v: Value = from_str(&doc).unwrap();
        assert!(start.elapsed() < std::time::Duration::from_secs(5));
        let expected = format!("ab\n{payload}é");
        assert_eq!(v[0], expected.as_str());
        assert_eq!(v[511], v[0]);
    }

    #[test]
    fn unicode_escapes() {
        let v: Value = from_str(r#""\u0041\ud83d\ude00""#).unwrap();
        assert_eq!(v, "A\u{1F600}");
    }
}
