//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` / `#[derive(Deserialize)]` against the
//! vendored value-tree `serde` crate, parsing the item directly from raw
//! `proc_macro` tokens (no `syn`/`quote` available offline). Supported input
//! shapes are exactly what this workspace uses: non-generic structs (named,
//! tuple/newtype, unit) and enums (unit, tuple and struct variants), with no
//! `#[serde(...)]` attributes. The generated representation follows real
//! serde's externally-tagged JSON conventions so output is byte-compatible:
//!
//! * newtype structs serialize as their inner value, wider tuples as arrays;
//! * unit enum variants serialize as `"Name"`;
//! * data variants serialize as `{"Name": payload}` with tuple payloads as
//!   arrays and struct payloads as objects.

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::fmt::Write;

#[derive(Debug)]
enum Shape {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    kind: VariantKind,
}

#[derive(Debug)]
enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

struct Item {
    name: String,
    shape: Shape,
}

/// Derive `serde::Serialize` for a struct or enum.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("serde_derive: generated Serialize impl failed to parse")
}

/// Derive `serde::Deserialize` for a struct or enum.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("serde_derive: generated Deserialize impl failed to parse")
}

// --- item parsing ---------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);

    let keyword = expect_ident(&tokens, &mut i);
    let name = expect_ident(&tokens, &mut i);

    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive (vendored): generic type `{name}` is not supported");
    }

    let shape = match keyword.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::TupleStruct(count_tuple_fields(g.stream()))
            }
            _ => Shape::UnitStruct,
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde_derive: malformed enum `{name}`: {other:?}"),
        },
        other => panic!("serde_derive: expected struct or enum, found `{other}`"),
    };
    Item { name, shape }
}

fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            // `#[...]` attribute (including doc comments).
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                // `pub(crate)` / `pub(super)` etc.
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => return,
        }
    }
}

fn expect_ident(tokens: &[TokenTree], i: &mut usize) -> String {
    match tokens.get(*i) {
        Some(TokenTree::Ident(id)) => {
            *i += 1;
            id.to_string()
        }
        other => panic!("serde_derive: expected identifier, found {other:?}"),
    }
}

/// Advance past one type (or discriminant expression): everything up to the
/// next `,` at angle-bracket depth zero. Groups are atomic tokens, so only
/// `<`/`>` need explicit depth tracking.
fn skip_to_top_level_comma(tokens: &[TokenTree], i: &mut usize) {
    let mut angle_depth = 0i32;
    while let Some(t) = tokens.get(*i) {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => return,
                _ => {}
            }
        }
        *i += 1;
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        fields.push(expect_ident(&tokens, &mut i));
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("serde_derive: expected `:` after field name, found {other:?}"),
        }
        skip_to_top_level_comma(&tokens, &mut i);
        i += 1; // past the comma (or the end)
    }
    fields
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut count = 0;
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        count += 1;
        skip_to_top_level_comma(&tokens, &mut i);
        i += 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = expect_ident(&tokens, &mut i);
        let kind = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantKind::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantKind::Named(parse_named_fields(g.stream()))
            }
            _ => VariantKind::Unit,
        };
        // Skip an explicit discriminant (`= expr`) if present.
        skip_to_top_level_comma(&tokens, &mut i);
        i += 1;
        variants.push(Variant { name, kind });
    }
    variants
}

// --- code generation ------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let mut body = String::new();
    match &item.shape {
        Shape::NamedStruct(fields) => {
            body.push_str("let mut __m = ::std::collections::BTreeMap::new();\n");
            for f in fields {
                let _ = writeln!(
                    body,
                    "__m.insert(::std::string::String::from(\"{f}\"), \
                     ::serde::Serialize::to_value(&self.{f}));"
                );
            }
            body.push_str("::serde::Value::Object(__m)\n");
        }
        Shape::TupleStruct(1) => {
            body.push_str("::serde::Serialize::to_value(&self.0)\n");
        }
        Shape::TupleStruct(n) => {
            body.push_str("::serde::Value::Array(::std::vec![");
            for idx in 0..*n {
                let _ = write!(body, "::serde::Serialize::to_value(&self.{idx}),");
            }
            body.push_str("])\n");
        }
        Shape::UnitStruct => {
            body.push_str("::serde::Value::Null\n");
        }
        Shape::Enum(variants) => {
            body.push_str("match self {\n");
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => {
                        let _ = writeln!(
                            body,
                            "{name}::{vn} => \
                             ::serde::Value::Str(::std::string::String::from(\"{vn}\")),"
                        );
                    }
                    VariantKind::Tuple(1) => {
                        let _ = writeln!(
                            body,
                            "{name}::{vn}(__f0) => {{\n\
                             let mut __m = ::std::collections::BTreeMap::new();\n\
                             __m.insert(::std::string::String::from(\"{vn}\"), \
                             ::serde::Serialize::to_value(__f0));\n\
                             ::serde::Value::Object(__m)\n}}"
                        );
                    }
                    VariantKind::Tuple(n) => {
                        let binders: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let _ = writeln!(
                            body,
                            "{name}::{vn}({binds}) => {{\n\
                             let mut __m = ::std::collections::BTreeMap::new();\n\
                             __m.insert(::std::string::String::from(\"{vn}\"), \
                             ::serde::Value::Array(::std::vec![{items}]));\n\
                             ::serde::Value::Object(__m)\n}}",
                            binds = binders.join(", "),
                            items = binders
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect::<Vec<_>>()
                                .join(", "),
                        );
                    }
                    VariantKind::Named(fields) => {
                        let _ = writeln!(
                            body,
                            "{name}::{vn} {{ {binds} }} => {{\n\
                             let mut __inner = ::std::collections::BTreeMap::new();\n\
                             {inserts}\n\
                             let mut __m = ::std::collections::BTreeMap::new();\n\
                             __m.insert(::std::string::String::from(\"{vn}\"), \
                             ::serde::Value::Object(__inner));\n\
                             ::serde::Value::Object(__m)\n}}",
                            binds = fields.join(", "),
                            inserts = fields
                                .iter()
                                .map(|f| format!(
                                    "__inner.insert(::std::string::String::from(\"{f}\"), \
                                     ::serde::Serialize::to_value({f}));"
                                ))
                                .collect::<Vec<_>>()
                                .join("\n"),
                        );
                    }
                }
            }
            body.push_str("}\n");
        }
    }
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n{body}}}\n}}\n"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let mut body = String::new();
    match &item.shape {
        Shape::NamedStruct(fields) => {
            let _ = writeln!(
                body,
                "let __m = __v.as_object().ok_or_else(|| \
                 ::serde::Error::custom(\"expected object for {name}\"))?;"
            );
            let _ = writeln!(body, "::std::result::Result::Ok({name} {{");
            for f in fields {
                let _ = writeln!(body, "{f}: ::serde::__field(__m, \"{f}\", \"{name}\")?,");
            }
            body.push_str("})\n");
        }
        Shape::TupleStruct(1) => {
            let _ = writeln!(
                body,
                "::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))"
            );
        }
        Shape::TupleStruct(n) => {
            let _ = writeln!(
                body,
                "let __a = __v.as_array().ok_or_else(|| \
                 ::serde::Error::custom(\"expected array for {name}\"))?;\n\
                 if __a.len() != {n} {{\n\
                 return ::std::result::Result::Err(\
                 ::serde::Error::custom(\"wrong tuple length for {name}\"));\n}}"
            );
            let _ = write!(body, "::std::result::Result::Ok({name}(");
            for idx in 0..*n {
                let _ = write!(body, "::serde::Deserialize::from_value(&__a[{idx}])?,");
            }
            body.push_str("))\n");
        }
        Shape::UnitStruct => {
            let _ = writeln!(
                body,
                "if __v.is_null() {{ ::std::result::Result::Ok({name}) }} else {{\n\
                 ::std::result::Result::Err(::serde::Error::custom(\"expected null for {name}\"))\n}}"
            );
        }
        Shape::Enum(variants) => {
            body.push_str("match __v {\n::serde::Value::Str(__s) => match __s.as_str() {\n");
            for v in variants {
                if matches!(v.kind, VariantKind::Unit) {
                    let _ = writeln!(
                        body,
                        "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),",
                        vn = v.name
                    );
                }
            }
            let _ = writeln!(
                body,
                "__other => ::std::result::Result::Err(::serde::Error::custom(\
                 ::std::format!(\"unknown variant `{{__other}}` of {name}\"))),\n}},"
            );
            body.push_str(
                "::serde::Value::Object(__m) if __m.len() == 1 => {\n\
                 let (__k, __inner) = __m.iter().next().unwrap();\n\
                 match __k.as_str() {\n",
            );
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => {}
                    VariantKind::Tuple(1) => {
                        let _ = writeln!(
                            body,
                            "\"{vn}\" => ::std::result::Result::Ok(\
                             {name}::{vn}(::serde::Deserialize::from_value(__inner)?)),"
                        );
                    }
                    VariantKind::Tuple(n) => {
                        let gets: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::from_value(&__a[{i}])?"))
                            .collect();
                        let _ = writeln!(
                            body,
                            "\"{vn}\" => {{\n\
                             let __a = __inner.as_array().ok_or_else(|| \
                             ::serde::Error::custom(\"expected array for {name}::{vn}\"))?;\n\
                             if __a.len() != {n} {{\n\
                             return ::std::result::Result::Err(::serde::Error::custom(\
                             \"wrong arity for {name}::{vn}\"));\n}}\n\
                             ::std::result::Result::Ok({name}::{vn}({gets}))\n}}",
                            gets = gets.join(", "),
                        );
                    }
                    VariantKind::Named(fields) => {
                        let _ = writeln!(
                            body,
                            "\"{vn}\" => {{\n\
                             let __fm = __inner.as_object().ok_or_else(|| \
                             ::serde::Error::custom(\"expected object for {name}::{vn}\"))?;\n\
                             ::std::result::Result::Ok({name}::{vn} {{ {fields} }})\n}}",
                            fields = fields
                                .iter()
                                .map(|f| format!(
                                    "{f}: ::serde::__field(__fm, \"{f}\", \"{name}::{vn}\")?"
                                ))
                                .collect::<Vec<_>>()
                                .join(", "),
                        );
                    }
                }
            }
            let _ = writeln!(
                body,
                "__other => ::std::result::Result::Err(::serde::Error::custom(\
                 ::std::format!(\"unknown variant `{{__other}}` of {name}\"))),\n}}\n}},\n\
                 _ => ::std::result::Result::Err(::serde::Error::custom(\
                 \"expected a variant of {name}\")),\n}}"
            );
        }
    }
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
         fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
         {body}}}\n}}\n"
    )
}
